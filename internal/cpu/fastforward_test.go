package cpu

import (
	"testing"

	"lbic/internal/cache"
	"lbic/internal/metrics"
	"lbic/internal/ports"
	"lbic/internal/trace"
)

// ffArbs builds one arbiter of every organization fast-forward interacts
// with: always-quiescent designs and the store-queue designs whose quiescence
// is conditional.
func ffArbs(t *testing.T) map[string]func() ports.Arbiter {
	t.Helper()
	return map[string]func() ports.Arbiter{
		"ideal-2": func() ports.Arbiter { a, _ := ports.NewIdeal(2); return a },
		"bank-4":  func() ports.Arbiter { a, _ := ports.NewBanked(4, 32); return a },
		"banksq-4": func() ports.Arbiter {
			a, _ := ports.NewBankedSQ(4, 32, 0)
			return a
		},
		"lbic-4x2": func() ports.Arbiter {
			a, err := corelbic(4, 2)
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
	}
}

// ffStream mixes dependent chains, store bursts, and far loads whose misses
// create the long idle stretches fast-forward exists for.
func ffStream(n int) []trace.Dyn {
	dyns := make([]trace.Dyn, 0, n)
	for i := 0; len(dyns) < n; i++ {
		switch i % 7 {
		case 0:
			dyns = append(dyns, load(r(1), r(1), uint64(i)*8192)) // serial miss chain
		case 1, 2:
			dyns = append(dyns, alu(r(1), r(1), r(2)))
		case 3:
			dyns = append(dyns, store(r(1), r(20), uint64(i%64)*8))
		default:
			dyns = append(dyns, alu(r(3), r(3), r(4)))
		}
	}
	return dyns[:n]
}

func newFFCore(t *testing.T, dyns []trace.Dyn, arb ports.Arbiter) *Core {
	t.Helper()
	hier, err := cache.NewHierarchy(cache.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 2_000_000
	c, err := New(trace.NewSliceStream(dyns), hier, arb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func histEqual(a, b *metrics.Histogram) bool {
	ab, bb := a.Buckets(), b.Buckets()
	if len(ab) != len(bb) || a.Count() != b.Count() || a.Sum() != b.Sum() {
		return false
	}
	for i := range ab {
		if ab[i] != bb[i] {
			return false
		}
	}
	return true
}

// TestFastForwardExactness is the load-bearing property: a run with idle-cycle
// fast-forward (Run) must be bit-identical — statistics, stall stack, grant
// histogram, occupancy gauges, MSHR occupancy, hierarchy counters — to the
// same run stepped cycle by cycle.
func TestFastForwardExactness(t *testing.T) {
	dyns := ffStream(3000)
	anySkipped := false
	for name, mk := range ffArbs(t) {
		t.Run(name, func(t *testing.T) {
			fast := newFFCore(t, dyns, mk())
			fastStats, err := fast.Run()
			if err != nil {
				t.Fatal(err)
			}
			slow := newFFCore(t, dyns, mk())
			for !slow.Done() {
				if err := slow.Step(); err != nil {
					t.Fatal(err)
				}
			}
			slowStats := slow.Stats()

			if fastStats != slowStats {
				t.Errorf("stats diverge:\nfast: %+v\nslow: %+v", fastStats, slowStats)
			}
			if fast.hier.Stats() != slow.hier.Stats() {
				t.Errorf("hierarchy stats diverge:\nfast: %+v\nslow: %+v",
					fast.hier.Stats(), slow.hier.Stats())
			}
			if !histEqual(fast.GrantsPerCycle(), slow.GrantsPerCycle()) {
				t.Errorf("grant histograms diverge: fast count=%d sum=%d, slow count=%d sum=%d",
					fast.GrantsPerCycle().Count(), fast.GrantsPerCycle().Sum(),
					slow.GrantsPerCycle().Count(), slow.GrantsPerCycle().Sum())
			}
			if !histEqual(fast.hier.MSHROccupancy(), slow.hier.MSHROccupancy()) {
				t.Errorf("MSHR occupancy histograms diverge")
			}
			fg, sg := fast.OccupancyGauges(), slow.OccupancyGauges()
			for i := range fg {
				if fg[i].Samples() != sg[i].Samples() || fg[i].Max() != sg[i].Max() || fg[i].Mean() != sg[i].Mean() {
					t.Errorf("gauge %q diverges: fast (n=%d max=%d mean=%f) slow (n=%d max=%d mean=%f)",
						fg[i].Name, fg[i].Samples(), fg[i].Max(), fg[i].Mean(),
						sg[i].Samples(), sg[i].Max(), sg[i].Mean())
				}
			}
			if fast.FastForwarded() > 0 {
				anySkipped = true
			}
			if slow.FastForwarded() != 0 {
				t.Errorf("stepped run fast-forwarded %d cycles", slow.FastForwarded())
			}
		})
	}
	if !anySkipped {
		t.Error("no configuration fast-forwarded any cycles; the equivalence test is vacuous")
	}
}

// TestFastForwardStallStackSums: after a fast-forwarded run, the CPI stall
// stack must still account for every cycle exactly once — the bulk-skip
// accounting cannot drop or double-count a cycle.
func TestFastForwardStallStackSums(t *testing.T) {
	for name, mk := range ffArbs(t) {
		t.Run(name, func(t *testing.T) {
			c := newFFCore(t, ffStream(3000), mk())
			s, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			var sum uint64
			for _, v := range s.StallCycles {
				sum += v
			}
			if sum != s.Cycles {
				t.Errorf("stall stack sums to %d, want Cycles = %d (fast-forwarded %d, stack %v)",
					sum, s.Cycles, c.FastForwarded(), s.StallCycles)
			}
		})
	}
}

// TestFastForwardWatchdogParity: a hang must produce the same watchdog error
// at the same cycle whether the idle span was fast-forwarded or stepped. No
// valid stream hangs the core, so the hang is synthetic: a phantom live store
// (white-box) keeps Done false with nothing scheduled, exactly the situation
// the watchdog guards against.
func TestFastForwardWatchdogParity(t *testing.T) {
	mk := func() *Core {
		c := newFFCore(t, nil, func() ports.Arbiter { a, _ := ports.NewIdeal(1); return a }())
		c.watchdog = 500
		c.storeLive = 1 // phantom: never retires, never requests a port
		return c
	}
	fast := mk()
	_, fastErr := fast.Run()
	if fast.FastForwarded() == 0 {
		t.Error("hang was not fast-forwarded; parity test is vacuous")
	}
	slow := mk()
	var slowErr error
	for slowErr == nil && !slow.Done() {
		slowErr = slow.Step()
	}
	if fastErr == nil || slowErr == nil {
		t.Fatalf("expected both runs to trip the watchdog; fast=%v slow=%v", fastErr, slowErr)
	}
	if fast.Now() != slow.Now() {
		t.Errorf("watchdog tripped at cycle %d fast-forwarded vs %d stepped", fast.Now(), slow.Now())
	}
	if fastErr.Error() != slowErr.Error() {
		t.Errorf("watchdog errors diverge:\nfast: %v\nslow: %v", fastErr, slowErr)
	}
	if fast.Stats() != slow.Stats() {
		t.Errorf("stats diverge:\nfast: %+v\nslow: %+v", fast.Stats(), slow.Stats())
	}
}

// TestFastForwardMaxCyclesParity: the cycle-budget error must also fire at
// the same cycle with identical statistics under fast-forward.
func TestFastForwardMaxCyclesParity(t *testing.T) {
	dyns := ffStream(3000)
	mk := func() *Core {
		hier, err := cache.NewHierarchy(cache.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		arb, err := ports.NewIdeal(1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.MaxCycles = 200
		c, err := New(trace.NewSliceStream(dyns), hier, arb, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	fast := mk()
	_, fastErr := fast.Run()
	slow := mk()
	var slowErr error
	for slowErr == nil && !slow.Done() {
		slowErr = slow.Step()
	}
	if fastErr == nil || slowErr == nil {
		t.Fatalf("expected both runs to exceed MaxCycles; fast=%v slow=%v", fastErr, slowErr)
	}
	if fastErr.Error() != slowErr.Error() {
		t.Errorf("MaxCycles errors diverge:\nfast: %v\nslow: %v", fastErr, slowErr)
	}
	if fast.Stats() != slow.Stats() {
		t.Errorf("stats diverge:\nfast: %+v\nslow: %+v", fast.Stats(), slow.Stats())
	}
}
