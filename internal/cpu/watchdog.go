package cpu

// Forward-progress watchdog. A wide out-of-order core with a pluggable,
// possibly user-supplied port arbiter can hang in ways no single queue bound
// catches: an arbiter that never grants, a store queue that never drains, a
// combining policy that starves one bank. The watchdog generalizes the
// starvation limit ScenarioCycles applies to bare arbiters: if no instruction
// commits and no committed store retires for WatchdogCycles consecutive
// cycles, the run aborts with a HangError describing exactly what is stuck —
// which turns a hung simulation into an actionable per-cell error instead of
// a wedged process, and is what makes the sweep runner's per-cell timeouts a
// backstop rather than the primary defense.

import (
	"fmt"
	"strings"

	"lbic/internal/ports"
)

// DefaultWatchdogCycles is the forward-progress limit applied when
// Config.WatchdogCycles is zero. The baseline core drains its entire
// 1024-entry window through a single ideal port in well under ten thousand
// cycles even when every access misses to memory, so a fifty-times-larger
// no-progress window only ever indicates a genuine hang.
const DefaultWatchdogCycles = 200_000

// HangError reports a forward-progress watchdog trip: the core went
// WatchdogCycles cycles without committing an instruction or retiring a
// committed store. Its fields snapshot the stuck pipeline so the hang is
// diagnosable from the error alone.
type HangError struct {
	// Cycle is the cycle at which the watchdog tripped; Window is how many
	// cycles had passed without forward progress.
	Cycle  uint64
	Window uint64
	// Committed and Dispatched count instructions at the trip point.
	Committed  uint64
	Dispatched uint64
	// Occupancies of the major structures.
	RUUOccupancy      int
	LSQOccupancy      int
	StoreBufOccupancy int
	// MemPending counts loads holding addresses but no cache-port grant;
	// OrderParked counts loads blocked on unknown older store addresses.
	MemPending  int
	OrderParked int
	// OldestSeq and OldestState identify the instruction the pipeline is
	// blocked behind: the head of the RUU, or the oldest committed store
	// ("store-buffer") when only the store buffer remains.
	OldestSeq   uint64
	OldestState string
	// Arbiter is the port arbiter's self-description (per-bank pending and
	// store-queue state) when it implements ports.StateDumper, else "".
	Arbiter string
}

// Error implements error with a single-line diagnostic dump.
func (e *HangError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cpu: no forward progress for %d cycles (cycle %d): oldest blocked seq %d (%s); committed %d of %d dispatched; RUU %d, LSQ %d, store buffer %d, %d loads awaiting ports, %d order-parked",
		e.Window, e.Cycle, e.OldestSeq, e.OldestState,
		e.Committed, e.Dispatched,
		e.RUUOccupancy, e.LSQOccupancy, e.StoreBufOccupancy,
		e.MemPending, e.OrderParked)
	if e.Arbiter != "" {
		fmt.Fprintf(&b, "; arbiter %s", e.Arbiter)
	}
	return b.String()
}

// hangError snapshots the stuck pipeline into a HangError.
func (c *Core) hangError() error {
	e := &HangError{
		Cycle:             c.now,
		Window:            c.now - c.lastProgress,
		Committed:         c.stats.Committed,
		Dispatched:        c.stats.Dispatched,
		RUUOccupancy:      c.count,
		LSQOccupancy:      c.lsqCount,
		StoreBufOccupancy: c.storeLive,
		MemPending:        len(c.memPending),
		OrderParked:       len(c.orderParked),
		OldestState:       c.HeadState(),
	}
	if c.count > 0 {
		e.OldestSeq = c.entries[c.head].dyn.Seq
	} else {
		// Only the committed store buffer remains; its head is the blocker.
		for i := 0; i < c.sbCount; i++ {
			sb := &c.storeBuf[(c.sbHead+i)%c.cfg.StoreBufferSize]
			if sb.live {
				e.OldestSeq = sb.seq
				e.OldestState = "store-buffer"
				break
			}
		}
	}
	if d, ok := c.arb.(ports.StateDumper); ok {
		e.Arbiter = d.DumpState()
	}
	return e
}
