package cpu

import "math"

// Fast-forward across provably idle cycles.
//
// Long miss latencies leave the core stepping through stretches of cycles in
// which nothing can happen: the window is stalled on an in-flight fill, no
// instruction is ready to issue, no request can be granted, and the only
// future state change is an already-scheduled event. Simulating those cycles
// one at a time is pure overhead, so after each Step the run loop asks
// idleCycles for a span it may skip in bulk. The skip is exact, not an
// approximation: every per-cycle statistic a stepped run would have recorded
// (stall attribution, dispatch/commit stall counters, grant histogram, MSHR
// occupancy) is replicated by accountSkipped and Hierarchy.SkipCycles, and
// the watchdog and MaxCycles trip points are honored by clamping the target
// so the tripping Step still executes. A fast-forwarded run is therefore
// bit-identical to a stepped run — a property fastforward_test.go asserts.
//
// Fast-forward is disabled when a Verifier is attached (the oracle observes
// every cycle) and when the arbiter does not implement ports.Quiescer or
// reports queued work (a draining store queue changes state on idle cycles).

// idleCycles returns how many cycles starting at c.now are provably inert:
// no event due, no hierarchy activity, no grantable request, commit and
// dispatch blocked, and the arbiter quiescent. Zero means step normally.
func (c *Core) idleCycles() uint64 {
	if c.verify != nil || c.arbQuiescent == nil || !c.arbQuiescent() {
		return 0
	}
	if c.readyQ.Len() > 0 || len(c.memPending) > 0 || c.sbUngranted > 0 {
		return 0
	}
	// Commit must be blocked for the whole span: either the window is empty,
	// or its head cannot retire (not done, or a store facing a full buffer).
	if c.count > 0 {
		e := &c.entries[c.head]
		if e.state == stDone && !(e.dyn.IsStore() && c.sbCount == c.cfg.StoreBufferSize) {
			return 0
		}
	}
	// Dispatch must be blocked: stream exhausted, window full, or the next
	// instruction needs an LSQ slot that is not there.
	if !c.fetchExhausted() && c.count < c.cfg.RUUSize {
		if dyn, ok := c.peek(); ok && !(dyn.IsMem() && c.lsqCount == c.cfg.LSQSize) {
			return 0
		}
	}
	// The peek probe above may have just discovered stream EOF, completing
	// the run: never skip past the end.
	if c.Done() {
		return 0
	}
	// The span ends at the first cycle with scheduled work. NextActivity is
	// asked from now-1 so a fill due exactly at cycle now is seen (Step for
	// now-1 has already run, so now >= 1 here).
	target := c.hier.NextActivity(c.now - 1)
	for d := uint64(0); d < wheelSize; d++ {
		if len(c.wheel[(c.now+d)%wheelSize]) > 0 {
			if t := c.now + d; t < target {
				target = t
			}
			break
		}
	}
	// The watchdog trips at lastProgress+watchdog and MaxCycles errors at
	// MaxCycles; both Steps must execute so the run fails identically.
	if c.watchdog != 0 {
		if t := c.lastProgress + c.watchdog; t < target {
			target = t
		}
	}
	if c.cfg.MaxCycles > 0 && c.cfg.MaxCycles < target {
		target = c.cfg.MaxCycles
	}
	if target <= c.now || target == math.MaxUint64 {
		return 0
	}
	return target - c.now
}

// skipIdle elides n idle cycles, replicating their per-cycle accounting.
func (c *Core) skipIdle(n uint64) {
	c.accountSkipped(n)
	c.hier.SkipCycles(n)
	c.now += n
	c.fastForwarded += n
}

// FastForwarded returns the cycles elided by fast-forward (a subset of
// Stats().Cycles, which counts them as simulated — they are, in bulk).
func (c *Core) FastForwarded() uint64 { return c.fastForwarded }
