package cpu

import (
	"testing"

	"lbic/internal/cache"
	"lbic/internal/core"
	"lbic/internal/isa"
	"lbic/internal/ports"
	"lbic/internal/trace"
)

func corelbic(m, n int) (ports.Arbiter, error) {
	return core.New(core.Config{Banks: m, LinePorts: n, LineSize: 32})
}

func r(i int) isa.Reg { return isa.R(i) }

// alu returns a 1-cycle integer op dst = src1 (op) src2.
func alu(dst, src1, src2 isa.Reg) trace.Dyn {
	return trace.Dyn{Op: isa.Add, Class: isa.ClassIntALU, Dst: dst, Src1: src1, Src2: src2}
}

func load(dst, base isa.Reg, addr uint64) trace.Dyn {
	return trace.Dyn{Op: isa.Ld, Class: isa.ClassLoad, Dst: dst, Src1: base, Addr: addr, Size: 8}
}

func store(val, base isa.Reg, addr uint64) trace.Dyn {
	return trace.Dyn{Op: isa.Sd, Class: isa.ClassStore, Src1: base, Src2: val, Addr: addr, Size: 8}
}

func runStream(t *testing.T, dyns []trace.Dyn, arb ports.Arbiter, mut func(*Config)) Stats {
	t.Helper()
	hier, err := cache.NewHierarchy(cache.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 1_000_000
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(trace.NewSliceStream(dyns), hier, arb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func ideal(t *testing.T, p int) ports.Arbiter {
	t.Helper()
	a, err := ports.NewIdeal(p)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDependencyChainThroughput(t *testing.T) {
	// A chain of N dependent 1-cycle adds must take ~N cycles (1 IPC with
	// back-to-back bypass), not 2N.
	const n = 100
	dyns := make([]trace.Dyn, n)
	for i := range dyns {
		dyns[i] = alu(r(1), r(1), r(2))
	}
	s := runStream(t, dyns, ideal(t, 1), nil)
	if s.Committed != n {
		t.Fatalf("committed = %d", s.Committed)
	}
	if s.Cycles < n || s.Cycles > n+10 {
		t.Errorf("chain of %d adds took %d cycles, want ~%d", n, s.Cycles, n)
	}
}

func TestIndependentOpsIssueWide(t *testing.T) {
	// 640 independent adds at issue width 64 should take ~10 cycles + small
	// pipeline overhead.
	const n = 640
	dyns := make([]trace.Dyn, n)
	for i := range dyns {
		dyns[i] = alu(r(1+i%16), r(17+i%8), r(25+i%4))
	}
	s := runStream(t, dyns, ideal(t, 1), nil)
	if s.Cycles > 20 {
		t.Errorf("%d independent adds took %d cycles, want ~10-15", n, s.Cycles)
	}
}

func TestMulLatency(t *testing.T) {
	// A chain of N multiplies (latency 3) takes ~3N cycles.
	const n = 50
	dyns := make([]trace.Dyn, n)
	for i := range dyns {
		dyns[i] = trace.Dyn{Op: isa.Mul, Class: isa.ClassIntMul, Dst: r(1), Src1: r(1), Src2: r(2)}
	}
	s := runStream(t, dyns, ideal(t, 1), nil)
	if s.Cycles < 3*n || s.Cycles > 3*n+10 {
		t.Errorf("mul chain took %d cycles, want ~%d", s.Cycles, 3*n)
	}
}

func TestDivUnpipelined(t *testing.T) {
	// With a single divider, independent divides serialize at 12 cycles each.
	const n = 10
	dyns := make([]trace.Dyn, n)
	for i := range dyns {
		dyns[i] = trace.Dyn{Op: isa.Div, Class: isa.ClassIntDiv, Dst: r(1 + i), Src1: r(20), Src2: r(21)}
	}
	s := runStream(t, dyns, ideal(t, 1), func(c *Config) {
		c.FUCount[isa.ClassIntDiv] = 1
	})
	if s.Cycles < 12*n {
		t.Errorf("independent divs on one unpipelined divider took %d cycles, want >= %d", s.Cycles, 12*n)
	}
	// With plenty of dividers they overlap.
	s2 := runStream(t, dyns, ideal(t, 1), nil)
	if s2.Cycles > 30 {
		t.Errorf("parallel divs took %d cycles, want ~13", s2.Cycles)
	}
}

func TestSinglePortSerializesLoads(t *testing.T) {
	// 200 independent loads (all hitting after the first line fill) at one
	// port take >= ~200 cycles; at 4 ideal ports about a quarter of that.
	const n = 200
	dyns := make([]trace.Dyn, n)
	for i := range dyns {
		dyns[i] = load(r(1+i%8), r(20), 0x10000+uint64(8*(i%4))) // one hot line
	}
	s1 := runStream(t, dyns, ideal(t, 1), nil)
	if s1.Cycles < n {
		t.Errorf("1-port: %d loads in %d cycles (impossible, <1 per cycle)", n, s1.Cycles)
	}
	s4 := runStream(t, dyns, ideal(t, 4), nil)
	if s4.Cycles > s1.Cycles/2 {
		t.Errorf("4-port %d cycles not much better than 1-port %d", s4.Cycles, s1.Cycles)
	}
}

func TestLoadUseLatency(t *testing.T) {
	// load -> dependent add: AGU (1) + cache hit (1) + add (1); a chain of
	// such pairs paces at ~3 cycles per pair.
	const n = 60
	var dyns []trace.Dyn
	for i := 0; i < n; i++ {
		dyns = append(dyns,
			load(r(1), r(1), 0x10000), // depends on previous add via r1
			alu(r(1), r(1), r(2)),
		)
	}
	s := runStream(t, dyns, ideal(t, 4), nil)
	perPair := float64(s.Cycles) / n
	if perPair < 2.5 || perPair > 3.6 {
		t.Errorf("load-use chain paced %.2f cycles/pair, want ~3", perPair)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// Independent (store, load) pairs to the same address: every load should
	// forward from the LSQ and never consume a cache port.
	const n = 50
	var dyns []trace.Dyn
	for i := 0; i < n; i++ {
		addr := 0x20000 + uint64(64*i)
		dyns = append(dyns,
			store(r(2), r(3), addr),
			load(r(4+i%8), r(3), addr),
		)
	}
	s := runStream(t, dyns, ideal(t, 8), nil)
	if s.Forwards != n {
		t.Errorf("forwards = %d, want %d", s.Forwards, n)
	}
}

func TestPartialOverlapBlocksForwarding(t *testing.T) {
	// A 4-byte store followed by an 8-byte load over it cannot forward; the
	// load waits until the store is written to the cache.
	dyns := []trace.Dyn{
		{Op: isa.Sw, Class: isa.ClassStore, Src1: r(1), Src2: r(2), Addr: 0x30000, Size: 4},
		{Op: isa.Ld, Class: isa.ClassLoad, Dst: r(3), Src1: r(1), Addr: 0x30000, Size: 8},
	}
	s := runStream(t, dyns, ideal(t, 2), nil)
	if s.Forwards != 0 {
		t.Errorf("partial overlap forwarded (%d), must not", s.Forwards)
	}
	if s.ForwardWaits == 0 {
		t.Error("load should have waited on the partial store")
	}
	if s.Committed != 2 {
		t.Errorf("committed = %d", s.Committed)
	}
}

func TestLoadWaitsForUnknownStoreAddress(t *testing.T) {
	// The store's address depends on a long divide chain; the younger load
	// (different address) must wait for the store address to be known.
	dyns := []trace.Dyn{
		{Op: isa.Div, Class: isa.ClassIntDiv, Dst: r(1), Src1: r(2), Src2: r(3)},            // 12 cycles
		{Op: isa.Div, Class: isa.ClassIntDiv, Dst: r(1), Src1: r(1), Src2: r(3)},            // +12
		{Op: isa.Sd, Class: isa.ClassStore, Src1: r(1), Src2: r(2), Addr: 0x40000, Size: 8}, // addr after divs
		load(r(5), r(6), 0x50000),
	}
	s := runStream(t, dyns, ideal(t, 2), nil)
	if s.OrderingStalls == 0 {
		t.Error("load should have stalled on the unknown store address")
	}
	if s.Cycles < 24 {
		t.Errorf("cycles = %d, want >= 24 (div chain gates the store address)", s.Cycles)
	}
}

func TestStoreBufferBackpressure(t *testing.T) {
	// A tiny store buffer with a single port and store-heavy traffic must
	// stall commit at some point but still complete.
	const n = 120
	var dyns []trace.Dyn
	for i := 0; i < n; i++ {
		dyns = append(dyns, store(r(2), r(3), 0x10000+uint64(8*i)%256))
	}
	s := runStream(t, dyns, ideal(t, 1), func(c *Config) {
		c.StoreBufferSize = 2
	})
	if s.Committed != n {
		t.Fatalf("committed = %d, want %d", s.Committed, n)
	}
	if s.CommitStallStoreBuf == 0 {
		t.Error("expected store-buffer commit stalls")
	}
}

func TestRUUWindowLimit(t *testing.T) {
	// With a 4-entry window, independent adds cannot exceed ~4 IPC even at
	// issue width 64.
	const n = 400
	dyns := make([]trace.Dyn, n)
	for i := range dyns {
		dyns[i] = alu(r(1+i%16), r(20), r(21))
	}
	s := runStream(t, dyns, ideal(t, 1), func(c *Config) {
		c.RUUSize = 4
		c.LSQSize = 4
	})
	if ipc := s.IPC(); ipc > 4.01 {
		t.Errorf("IPC %.2f exceeds window bound 4", ipc)
	}
	if s.DispatchStallRUU == 0 {
		t.Error("expected RUU dispatch stalls")
	}
}

func TestLSQLimit(t *testing.T) {
	const n = 300
	dyns := make([]trace.Dyn, n)
	for i := range dyns {
		dyns[i] = load(r(1+i%8), r(20), 0x10000)
	}
	s := runStream(t, dyns, ideal(t, 1), func(c *Config) {
		c.LSQSize = 2
	})
	if s.DispatchStallLSQ == 0 {
		t.Error("expected LSQ dispatch stalls")
	}
	if s.Committed != n {
		t.Fatalf("committed = %d", s.Committed)
	}
}

func TestBankConflictsSlowBankedCache(t *testing.T) {
	// All loads to the same bank, different lines: a 4-bank cache degrades to
	// one access per cycle, while 4 ideal ports sustain ~4.
	const n = 400
	mk := func() []trace.Dyn {
		dyns := make([]trace.Dyn, n)
		for i := range dyns {
			// Same bank 0 (bank bits = line addr low bits), lines 128B apart.
			dyns[i] = load(r(1+i%8), r(20), 0x10000+uint64(i%8)*128)
		}
		return dyns
	}
	bank, err := ports.NewBanked(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	sBank := runStream(t, mk(), bank, nil)
	sIdeal := runStream(t, mk(), ideal(t, 4), nil)
	if sBank.Cycles < 2*sIdeal.Cycles {
		t.Errorf("bank-conflict stream: banked %d cycles vs ideal %d; expected >=2x gap",
			sBank.Cycles, sIdeal.Cycles)
	}
	if bank.Conflicts == 0 {
		t.Error("expected bank conflicts")
	}
}

func TestReplicatedStoreSerialization(t *testing.T) {
	// Alternating store/load traffic: replicated ports serialize on stores,
	// ideal does not.
	const n = 300
	mk := func() []trace.Dyn {
		var dyns []trace.Dyn
		for i := 0; i < n/2; i++ {
			dyns = append(dyns,
				store(r(2), r(3), 0x10000+uint64(32*(i%16))),
				load(r(4+i%4), r(3), 0x14000+uint64(32*(i%16))),
			)
		}
		return dyns
	}
	repl, err := ports.NewReplicated(4)
	if err != nil {
		t.Fatal(err)
	}
	sRepl := runStream(t, mk(), repl, nil)
	sIdeal := runStream(t, mk(), ideal(t, 4), nil)
	if float64(sRepl.Cycles) < 1.3*float64(sIdeal.Cycles) {
		t.Errorf("replicated %d cycles vs ideal %d; expected clear store serialization",
			sRepl.Cycles, sIdeal.Cycles)
	}
	if repl.StoreCycles == 0 {
		t.Error("expected store-exclusive cycles")
	}
}

func TestMaxInstsStopsDispatch(t *testing.T) {
	dyns := make([]trace.Dyn, 100)
	for i := range dyns {
		dyns[i] = alu(r(1+i%8), r(20), r(21))
	}
	s := runStream(t, dyns, ideal(t, 1), func(c *Config) {
		c.MaxInsts = 40
	})
	if s.Committed != 40 || s.Dispatched != 40 {
		t.Errorf("committed/dispatched = %d/%d, want 40/40", s.Committed, s.Dispatched)
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	hier, err := cache.NewHierarchy(cache.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 5
	dyns := make([]trace.Dyn, 10000)
	for i := range dyns {
		dyns[i] = load(r(1), r(2), 0x10000+uint64(i)*64)
	}
	c, err := New(trace.NewSliceStream(dyns), hier, ideal(t, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err == nil {
		t.Error("expected MaxCycles error")
	}
}

func TestConfigValidation(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.RUUSize = 0 },
		func(c *Config) { c.LSQSize = c.RUUSize + 1 },
		func(c *Config) { c.StoreBufferSize = 0 },
		func(c *Config) { c.MemScanDepth = 0 },
		func(c *Config) { c.FUCount[isa.ClassIntALU] = -1 },
	}
	for i, mut := range muts {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	dyns := []trace.Dyn{
		load(r(1), r(2), 0x10000),
		store(r(1), r(2), 0x10008),
		alu(r(3), r(1), r(1)),
	}
	s := runStream(t, dyns, ideal(t, 2), nil)
	if s.Loads != 1 || s.Stores != 1 {
		t.Errorf("loads/stores = %d/%d", s.Loads, s.Stores)
	}
	if s.Committed != 3 || s.Dispatched != 3 {
		t.Errorf("committed/dispatched = %d/%d", s.Committed, s.Dispatched)
	}
	if s.IPC() <= 0 {
		t.Error("IPC must be positive")
	}
}

func TestMissLatencyVisible(t *testing.T) {
	// A single cold load: AGU 1 + L2+mem (14) + fill. Total run should be
	// around 17-20 cycles, far more than a hit.
	dyns := []trace.Dyn{load(r(1), r(2), 0x70000)}
	s := runStream(t, dyns, ideal(t, 1), nil)
	if s.Cycles < 15 {
		t.Errorf("cold miss run took %d cycles, want >= 15", s.Cycles)
	}
}

func TestZeroLengthStream(t *testing.T) {
	s := runStream(t, nil, ideal(t, 1), nil)
	if s.Committed != 0 {
		t.Errorf("committed = %d", s.Committed)
	}
}

func TestLBICEndToEnd(t *testing.T) {
	// Same-line pairs in two banks: a 2x2 LBIC should clearly beat a 2-bank
	// cache on this stream.
	const n = 400
	mk := func() []trace.Dyn {
		var dyns []trace.Dyn
		for i := 0; i < n/4; i++ {
			base := 0x10000 + uint64(i%4)*128
			dyns = append(dyns,
				load(r(1+i%4), r(20), base),     // bank 0
				load(r(5+i%4), r(20), base+8),   // bank 0, same line
				load(r(9+i%4), r(20), base+32),  // bank 1
				load(r(13+i%4), r(20), base+40), // bank 1, same line
			)
		}
		return dyns
	}
	mkArb := func() ports.Arbiter {
		a, err := corelbic(2, 2)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	bank, err := ports.NewBanked(2, 32)
	if err != nil {
		t.Fatal(err)
	}
	sLBIC := runStream(t, mk(), mkArb(), nil)
	sBank := runStream(t, mk(), bank, nil)
	if float64(sBank.Cycles) < 1.5*float64(sLBIC.Cycles) {
		t.Errorf("LBIC %d cycles vs banked %d; combining should nearly double throughput",
			sLBIC.Cycles, sBank.Cycles)
	}
}
