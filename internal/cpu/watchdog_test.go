package cpu

import (
	"context"
	"errors"
	"strings"
	"testing"

	"lbic/internal/cache"
	"lbic/internal/ports"
	"lbic/internal/trace"
)

// starvingArbiter never grants any request, modeling a buggy user-supplied
// arbiter. It also self-describes via StateDumper so the watchdog test can
// check the dump is threaded into the error.
type starvingArbiter struct{}

func (starvingArbiter) Name() string                                     { return "starve" }
func (starvingArbiter) PeakWidth() int                                   { return 1 }
func (starvingArbiter) Grant(_ uint64, _ []ports.Request, d []int) []int { return d }
func (starvingArbiter) DumpState() string                                { return "starve: granting nothing" }

func TestWatchdogTripsOnStarvedLoad(t *testing.T) {
	// One committing add, then a load the arbiter never grants: no commit can
	// ever happen again, and the watchdog must identify the load as the
	// oldest blocked instruction.
	dyns := []trace.Dyn{
		alu(r(1), r(2), r(3)),
		load(r(4), r(5), 0x1000),
		alu(r(6), r(4), r(1)),
	}
	hier, err := cache.NewHierarchy(cache.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.WatchdogCycles = 500
	c, err := New(trace.NewSliceStream(dyns), hier, starvingArbiter{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run()
	var hang *HangError
	if !errors.As(err, &hang) {
		t.Fatalf("Run() = %v, want *HangError", err)
	}
	if hang.OldestSeq != 1 {
		t.Errorf("OldestSeq = %d, want 1 (the starved load)", hang.OldestSeq)
	}
	if hang.Window < 500 {
		t.Errorf("Window = %d, want >= 500", hang.Window)
	}
	if hang.MemPending != 1 {
		t.Errorf("MemPending = %d, want 1", hang.MemPending)
	}
	msg := err.Error()
	for _, want := range []string{
		"no forward progress",
		"oldest blocked seq 1",
		"load/",
		"starve: granting nothing",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

func TestWatchdogDisabled(t *testing.T) {
	// With the watchdog disabled the same starved pipeline runs until the
	// MaxCycles deadlock guard, not a HangError.
	dyns := []trace.Dyn{load(r(4), r(5), 0x1000)}
	hier, err := cache.NewHierarchy(cache.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.WatchdogCycles = -1
	cfg.MaxCycles = 2000
	c, err := New(trace.NewSliceStream(dyns), hier, starvingArbiter{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run()
	var hang *HangError
	if errors.As(err, &hang) {
		t.Fatalf("watchdog tripped despite WatchdogCycles=-1: %v", err)
	}
	if err == nil {
		t.Fatal("starved run finished without error; MaxCycles guard missing")
	}
}

func TestWatchdogAllowsLongHealthyRuns(t *testing.T) {
	// A healthy run many times longer than the watchdog window must not trip:
	// the watchdog bounds stall length, not run length.
	const n = 4000
	dyns := make([]trace.Dyn, n)
	for i := range dyns {
		dyns[i] = alu(r(1), r(1), r(2)) // dependency chain: ~1 commit/cycle
	}
	s := runStream(t, dyns, ideal(t, 1), func(c *Config) {
		c.WatchdogCycles = 50 // far below total cycles, above any real stall
	})
	if s.Committed != n {
		t.Fatalf("committed = %d, want %d", s.Committed, n)
	}
}

func TestRunContextCancel(t *testing.T) {
	// Canceling the context stops a run that would otherwise starve forever.
	dyns := []trace.Dyn{load(r(4), r(5), 0x1000)}
	hier, err := cache.NewHierarchy(cache.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.WatchdogCycles = -1 // watchdog off: cancellation is the only exit
	c, err := New(trace.NewSliceStream(dyns), hier, starvingArbiter{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = c.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext(canceled) = %v, want context.Canceled", err)
	}
}
