// Package cpu is the cycle-level timing model of the paper's dynamic
// superscalar processor (§2.1, Table 1): out-of-order issue over a register
// update unit (RUU), a load/store queue (LSQ) with store-to-load forwarding
// and address-based memory ordering, a Table 1 functional-unit pool, and
// in-order commit. The front end is perfect — instructions arrive from the
// committed dynamic path (trace.Stream) at up to FetchWidth per cycle — and
// the data memory system is a cache.Hierarchy guarded by a ports.Arbiter,
// which is where the paper's designs differ.
package cpu

import (
	"fmt"

	"lbic/internal/isa"
)

// Config sets the processor parameters. DefaultConfig returns the paper's
// Table 1 baseline.
type Config struct {
	// FetchWidth is the maximum instructions dispatched per cycle.
	FetchWidth int
	// IssueWidth is the maximum operations issued to functional units per
	// cycle (loads and stores count for their address generation).
	IssueWidth int
	// CommitWidth is the maximum instructions retired per cycle.
	CommitWidth int
	// RUUSize is the register update unit (instruction window) capacity.
	RUUSize int
	// LSQSize is the load/store queue capacity.
	LSQSize int
	// StoreBufferSize bounds committed stores waiting to be written to the
	// cache; a full buffer stalls commit.
	StoreBufferSize int
	// FUCount gives the number of functional units per class; zero entries
	// for compute classes default to Table 1's 64. Latencies are fixed by
	// isa.LatencyOf.
	FUCount [isa.NumClasses]int
	// MemScanDepth bounds how many ready memory requests are presented to
	// the port arbiter per cycle (the LSQ scheduling window).
	MemScanDepth int
	// MaxInsts stops dispatch after this many instructions (0 = run the
	// stream to exhaustion). In-flight instructions still drain.
	MaxInsts uint64
	// MaxCycles aborts a run that exceeds this cycle count (0 = no limit);
	// it is a deadlock guard for tests.
	MaxCycles uint64
	// WatchdogCycles is the forward-progress watchdog: if no instruction
	// commits and no committed store retires for this many consecutive
	// cycles, the run aborts with a *HangError diagnosing the stuck pipeline
	// (occupancies, the oldest blocked sequence number, and the arbiter's
	// per-bank state). 0 selects DefaultWatchdogCycles; negative disables
	// the watchdog. Unlike MaxCycles it bounds stall length, not run length,
	// so it stays valid for arbitrarily long healthy runs.
	WatchdogCycles int
}

// DefaultConfig returns the Table 1 baseline: 64-wide fetch/issue/commit,
// 1024-entry RUU, 512-entry LSQ, 64 units of every functional class.
func DefaultConfig() Config {
	var fu [isa.NumClasses]int
	for c := range fu {
		fu[c] = 64
	}
	return Config{
		FetchWidth:      64,
		IssueWidth:      64,
		CommitWidth:     64,
		RUUSize:         1024,
		LSQSize:         512,
		StoreBufferSize: 64,
		FUCount:         fu,
		MemScanDepth:    64,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.FetchWidth < 1 || c.IssueWidth < 1 || c.CommitWidth < 1:
		return fmt.Errorf("cpu: widths must be positive (fetch=%d issue=%d commit=%d)",
			c.FetchWidth, c.IssueWidth, c.CommitWidth)
	case c.RUUSize < 1:
		return fmt.Errorf("cpu: RUU size %d is not positive", c.RUUSize)
	case c.LSQSize < 1 || c.LSQSize > c.RUUSize:
		return fmt.Errorf("cpu: LSQ size %d must be in [1,%d]", c.LSQSize, c.RUUSize)
	case c.StoreBufferSize < 1:
		return fmt.Errorf("cpu: store buffer size %d is not positive", c.StoreBufferSize)
	case c.MemScanDepth < 1:
		return fmt.Errorf("cpu: memory scan depth %d is not positive", c.MemScanDepth)
	}
	for cl, n := range c.FUCount {
		if n < 0 {
			return fmt.Errorf("cpu: negative unit count %d for class %s", n, isa.Class(cl))
		}
	}
	return nil
}

// Stats aggregates a run's activity.
type Stats struct {
	Cycles     uint64
	Committed  uint64
	Dispatched uint64
	Issued     uint64

	// IssuedByClass breaks issues down by functional-unit class.
	IssuedByClass [isa.NumClasses]uint64

	Loads       uint64 // committed loads
	Stores      uint64 // committed stores
	Forwards    uint64 // loads serviced by the LSQ/store buffer, zero latency
	PortGrants  uint64 // requests granted a cache port
	PortBlocked uint64 // granted requests rejected by the hierarchy (MSHR full)

	CommitStallStoreBuf uint64 // commit-halting cycles from a full store buffer
	DispatchStallRUU    uint64
	DispatchStallLSQ    uint64
	OrderingStalls      uint64 // load-cycles spent waiting on unknown store addresses
	ForwardWaits        uint64 // loads that waited on an unready matching store

	// StallCycles is the CPI stall stack: every simulated cycle attributed
	// to exactly one StallCause, so the entries sum to Cycles. See
	// StallCause for the attribution rules.
	StallCycles [NumStallCauses]uint64
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}
