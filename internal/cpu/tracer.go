package cpu

import (
	"fmt"
	"io"
)

// TraceOptions configures a traced run.
type TraceOptions struct {
	// SkipCycles fast-forwards past the warm-up before printing.
	SkipCycles uint64
	// MaxCycles bounds the printed window (0 = until completion).
	MaxCycles uint64
	// Every prints one line per this many cycles (0 or 1 = every cycle).
	// Sampling aligns to absolute cycle numbers (cycle % Every == 0), not
	// to SkipCycles: with SkipCycles=1003 and Every=10 the first printed
	// cycle is 1010, so lines from runs with different warm-ups land on
	// comparable cycles.
	Every uint64
}

// TraceRun steps the core to completion, writing a per-cycle pipeline
// occupancy timeline to w: commits and issues this cycle, window/LSQ
// occupancy, port grants, loads awaiting ports, the committed store buffer,
// and what the oldest instruction is doing. It is the visibility tool for
// understanding *why* a configuration performs as it does.
//
// The column header is printed immediately before the first traced cycle;
// when SkipCycles skips the entire run nothing but the final summary is
// written.
func TraceRun(c *Core, w io.Writer, opt TraceOptions) (Stats, error) {
	if opt.Every == 0 {
		opt.Every = 1
	}
	var prev Stats
	printed := uint64(0)
	headerDone := false
	for !c.Done() {
		now := c.Now()
		head := c.HeadState()
		if err := c.Step(); err != nil {
			return c.Stats(), err
		}
		cur := c.Stats()
		if now >= opt.SkipCycles && now%opt.Every == 0 {
			if opt.MaxCycles > 0 && printed >= opt.MaxCycles {
				// Keep running silently so final statistics are complete.
			} else {
				if !headerDone {
					fmt.Fprintf(w, "%8s %4s %4s %5s %5s %5s %5s %5s %4s  %s\n",
						"cycle", "com", "iss", "ruu", "lsq", "rdy", "memq", "stbuf", "grnt", "head")
					headerDone = true
				}
				fmt.Fprintf(w, "%8d %4d %4d %5d %5d %5d %5d %5d %4d  %s\n",
					now,
					cur.Committed-prev.Committed,
					cur.Issued-prev.Issued,
					c.InFlight(), c.LSQLen(), c.ReadyLen(),
					c.MemPendingLen(), c.StoreBufferLen(),
					cur.PortGrants-prev.PortGrants,
					head)
				printed++
			}
		}
		prev = cur
	}
	st := c.Stats()
	fmt.Fprintf(w, "\n%d instructions, %d cycles, IPC %.3f\n", st.Committed, st.Cycles, st.IPC())
	return st, nil
}
