package cpu

// Introspection accessors used by the pipeline tracer and diagnostics. They
// expose occupancy snapshots without letting callers mutate the pipeline.

// InFlight returns the number of instructions currently in the RUU.
func (c *Core) InFlight() int { return c.count }

// LSQLen returns the number of memory operations currently in the LSQ.
func (c *Core) LSQLen() int { return c.lsqCount }

// ReadyLen returns the number of instructions waiting in the ready queue.
func (c *Core) ReadyLen() int { return c.readyQ.Len() }

// MemPendingLen returns the number of loads waiting for a cache port.
func (c *Core) MemPendingLen() int { return len(c.memPending) }

// StoreBufferLen returns the committed stores not yet written to the cache.
func (c *Core) StoreBufferLen() int { return c.storeLive }

// OrderParkedLen returns loads blocked on unknown older store addresses.
func (c *Core) OrderParkedLen() int { return len(c.orderParked) }

// HeadState reports the kind and state of the oldest RUU entry, e.g.
// "load/mem-wait"; "empty" when the window is empty. For diagnostics.
func (c *Core) HeadState() string {
	if c.count == 0 {
		return "empty"
	}
	e := &c.entries[c.head]
	kind := "alu"
	if e.dyn.IsLoad() {
		kind = "load"
	} else if e.dyn.IsStore() {
		kind = "store"
	}
	return kind + "/" + e.state.String()
}
