package cpu

// fwdTable replaces the old map[uint64][]fwdRef store-forwarding index with a
// chained hash table over pooled nodes, sized once at New to the maximum
// number of live forwarding refs — every store with a generated address is
// in the LSQ or the store buffer, and each contributes at most two 8-byte
// granules — so the per-cycle hot path never allocates and never hands
// garbage to the collector.
type fwdNode struct {
	ref  fwdRef
	g    uint64 // granule key
	next int32  // bucket chain, -1 terminates
}

type fwdTable struct {
	buckets []int32 // head node index per bucket, -1 empty
	mask    uint64
	nodes   []fwdNode
	free    int32 // head of the free list threaded through nodes[].next
}

func (t *fwdTable) init(maxRefs int) {
	n := 1
	for n < 2*maxRefs {
		n <<= 1
	}
	t.buckets = make([]int32, n)
	for i := range t.buckets {
		t.buckets[i] = -1
	}
	t.mask = uint64(n - 1)
	t.nodes = make([]fwdNode, 0, maxRefs)
	t.free = -1
}

func (t *fwdTable) bucket(g uint64) *int32 {
	h := g * 0x9E3779B97F4A7C15
	return &t.buckets[(h^h>>29)&t.mask]
}

func (t *fwdTable) insert(g uint64, ref fwdRef) {
	var idx int32
	if t.free >= 0 {
		idx = t.free
		t.free = t.nodes[idx].next
	} else {
		// Beyond the sized capacity (cannot happen under the LSQ + store
		// buffer bound, but grow rather than corrupt if it ever does).
		t.nodes = append(t.nodes, fwdNode{})
		idx = int32(len(t.nodes) - 1)
	}
	b := t.bucket(g)
	t.nodes[idx] = fwdNode{ref: ref, g: g, next: *b}
	*b = idx
}

// remove unlinks the (g, seq) node, returning it to the free list.
func (t *fwdTable) remove(g uint64, seq uint64) {
	b := t.bucket(g)
	prev := int32(-1)
	for idx := *b; idx >= 0; {
		n := &t.nodes[idx]
		if n.g == g && n.ref.seq == seq {
			if prev < 0 {
				*b = n.next
			} else {
				t.nodes[prev].next = n.next
			}
			n.next = t.free
			t.free = idx
			return
		}
		prev = idx
		idx = n.next
	}
}

// retag updates the (g, seq) node's RUU linkage (used at commit, when a
// store's ref stops pointing into the RUU and starts pointing at its store
// buffer slot).
func (t *fwdTable) retag(g uint64, seq uint64, ruu int32) {
	for idx := *t.bucket(g); idx >= 0; idx = t.nodes[idx].next {
		n := &t.nodes[idx]
		if n.g == g && n.ref.seq == seq {
			n.ref.ruu = ruu
			return
		}
	}
}
