package cpu

import (
	"strings"
	"testing"

	"lbic/internal/cache"
	"lbic/internal/isa"
	"lbic/internal/ports"
	"lbic/internal/trace"
)

// TestMSHRExhaustionRetries drives more concurrent misses than MSHRs: the
// blocked grants must be retried and every load must still complete.
func TestMSHRExhaustionRetries(t *testing.T) {
	const n = 200
	dyns := make([]trace.Dyn, n)
	for i := range dyns {
		// Every load goes to a distinct line: all misses.
		dyns[i] = load(r(1+i%8), r(20), 0x100000+uint64(i)*64)
	}
	hier, err := cache.NewHierarchy(func() cache.Params {
		p := cache.DefaultParams()
		p.MSHRs = 4
		return p
	}())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 1_000_000
	c, err := New(trace.NewSliceStream(dyns), hier, ideal(t, 8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != n {
		t.Fatalf("committed %d, want %d", st.Committed, n)
	}
	if st.PortBlocked == 0 {
		t.Error("expected MSHR-full port rejections")
	}
	if hier.Stats().Blocked == 0 {
		t.Error("hierarchy should have counted blocked accesses")
	}
}

// TestCommitWidthBound: with commit width 2, IPC cannot exceed 2.
func TestCommitWidthBound(t *testing.T) {
	const n = 400
	dyns := make([]trace.Dyn, n)
	for i := range dyns {
		dyns[i] = alu(r(1+i%16), r(20), r(21))
	}
	s := runStream(t, dyns, ideal(t, 1), func(c *Config) {
		c.CommitWidth = 2
	})
	if s.IPC() > 2.001 {
		t.Errorf("IPC %.3f exceeds commit width 2", s.IPC())
	}
	if s.IPC() < 1.6 {
		t.Errorf("IPC %.3f far below the commit bound for independent ops", s.IPC())
	}
}

// TestFetchWidthBound: with fetch width 3, IPC cannot exceed 3.
func TestFetchWidthBound(t *testing.T) {
	const n = 400
	dyns := make([]trace.Dyn, n)
	for i := range dyns {
		dyns[i] = alu(r(1+i%16), r(20), r(21))
	}
	s := runStream(t, dyns, ideal(t, 1), func(c *Config) {
		c.FetchWidth = 3
	})
	if s.IPC() > 3.001 {
		t.Errorf("IPC %.3f exceeds fetch width 3", s.IPC())
	}
}

// TestIssueWidthBound: with issue width 4, IPC cannot exceed 4.
func TestIssueWidthBound(t *testing.T) {
	const n = 400
	dyns := make([]trace.Dyn, n)
	for i := range dyns {
		dyns[i] = alu(r(1+i%16), r(20), r(21))
	}
	s := runStream(t, dyns, ideal(t, 1), func(c *Config) {
		c.IssueWidth = 4
	})
	if s.IPC() > 4.001 {
		t.Errorf("IPC %.3f exceeds issue width 4", s.IPC())
	}
}

// TestVirtualMatchesIdeal: time-division multiplexing must be grant-identical
// to ideal multi-porting (the §1 taxonomy equivalence).
func TestVirtualMatchesIdeal(t *testing.T) {
	mk := func(n int) []trace.Dyn {
		var dyns []trace.Dyn
		for i := 0; i < n; i++ {
			base := 0x10000 + uint64(i%32)*64
			dyns = append(dyns,
				load(r(1+i%8), r(20), base),
				store(r(2), r(20), base+8),
				alu(r(9+i%8), r(21), r(22)),
			)
		}
		return dyns
	}
	virt, err := ports.NewVirtual(2)
	if err != nil {
		t.Fatal(err)
	}
	sVirt := runStream(t, mk(300), virt, nil)
	sIdeal := runStream(t, mk(300), ideal(t, 2), nil)
	if sVirt.Cycles != sIdeal.Cycles {
		t.Errorf("virt-2 %d cycles != true-2 %d cycles", sVirt.Cycles, sIdeal.Cycles)
	}
	if virt.Name() != "virt-2" || virt.ClockMultiple != 2 {
		t.Error("virtual metadata wrong")
	}
}

// TestTraceRunOutput checks the tracer emits the expected columns and totals.
func TestTraceRunOutput(t *testing.T) {
	dyns := make([]trace.Dyn, 50)
	for i := range dyns {
		dyns[i] = alu(r(1+i%8), r(20), r(21))
	}
	hier, err := cache.NewHierarchy(cache.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 10_000
	c, err := New(trace.NewSliceStream(dyns), hier, ideal(t, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	st, err := TraceRun(c, &sb, TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 50 {
		t.Fatalf("committed %d", st.Committed)
	}
	out := sb.String()
	for _, want := range []string{"cycle", "ruu", "head", "50 instructions"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

// TestInspectors: occupancy accessors stay coherent mid-run.
func TestInspectors(t *testing.T) {
	var dyns []trace.Dyn
	for i := 0; i < 100; i++ {
		dyns = append(dyns,
			load(r(1+i%8), r(20), 0x100000+uint64(i)*64), // all misses
			store(r(2), r(20), 0x200000+uint64(i)*64),
		)
	}
	hier, err := cache.NewHierarchy(cache.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 100_000
	c, err := New(trace.NewSliceStream(dyns), hier, ideal(t, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawWork := false
	for !c.Done() {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		if c.InFlight() < 0 || c.InFlight() > cfg.RUUSize {
			t.Fatalf("InFlight out of range: %d", c.InFlight())
		}
		if c.LSQLen() > cfg.LSQSize {
			t.Fatalf("LSQLen %d exceeds capacity", c.LSQLen())
		}
		if c.MemPendingLen() > 0 || c.StoreBufferLen() > 0 {
			sawWork = true
		}
		if st := c.HeadState(); st == "" {
			t.Fatal("empty head state")
		}
	}
	if !sawWork {
		t.Error("inspectors never observed memory activity")
	}
	if c.HeadState() != "empty" {
		t.Errorf("final head state %q, want empty", c.HeadState())
	}
}

// TestOrderParkedAccessor exercises the ordering-stall visibility.
func TestOrderParkedAccessor(t *testing.T) {
	dyns := []trace.Dyn{
		{Op: isa.Div, Class: isa.ClassIntDiv, Dst: r(1), Src1: r(2), Src2: r(3)},
		{Op: isa.Sd, Class: isa.ClassStore, Src1: r(1), Src2: r(2), Addr: 0x40000, Size: 8},
		load(r(5), r(6), 0x50000),
	}
	hier, err := cache.NewHierarchy(cache.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 10_000
	c, err := New(trace.NewSliceStream(dyns), hier, ideal(t, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	parked := false
	for !c.Done() {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		if c.OrderParkedLen() > 0 {
			parked = true
		}
	}
	if !parked {
		t.Error("load behind an unknown store address never showed as order-parked")
	}
}

// TestIssuedByClass: the per-class breakdown sums to the total issues and
// lands in the right classes.
func TestIssuedByClass(t *testing.T) {
	dyns := []trace.Dyn{
		alu(r(1), r(20), r(21)),
		{Op: isa.Mul, Class: isa.ClassIntMul, Dst: r(2), Src1: r(20), Src2: r(21)},
		{Op: isa.FAdd, Class: isa.ClassFPAdd, Dst: isa.F(1), Src1: isa.F(2), Src2: isa.F(3)},
		load(r(3), r(20), 0x10000),
		store(r(3), r(20), 0x10008),
	}
	s := runStream(t, dyns, ideal(t, 2), nil)
	var sum uint64
	for _, n := range s.IssuedByClass {
		sum += n
	}
	if sum != s.Issued {
		t.Errorf("class sum %d != issued %d", sum, s.Issued)
	}
	if s.IssuedByClass[isa.ClassIntALU] != 1 || s.IssuedByClass[isa.ClassIntMul] != 1 ||
		s.IssuedByClass[isa.ClassFPAdd] != 1 || s.IssuedByClass[isa.ClassLoad] != 1 ||
		s.IssuedByClass[isa.ClassStore] != 1 {
		t.Errorf("class breakdown wrong: %v", s.IssuedByClass)
	}
}

func TestNewRejectsNilArguments(t *testing.T) {
	hier, _ := cache.NewHierarchy(cache.DefaultParams())
	arb, _ := ports.NewIdeal(1)
	stream := trace.NewSliceStream(nil)
	if _, err := New(nil, hier, arb, DefaultConfig()); err == nil {
		t.Error("nil stream accepted")
	}
	if _, err := New(stream, nil, arb, DefaultConfig()); err == nil {
		t.Error("nil hierarchy accepted")
	}
	if _, err := New(stream, hier, nil, DefaultConfig()); err == nil {
		t.Error("nil arbiter accepted")
	}
}
