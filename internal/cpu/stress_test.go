package cpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lbic/internal/cache"
	"lbic/internal/core"
	"lbic/internal/isa"
	"lbic/internal/ports"
	"lbic/internal/trace"
)

// genStream builds a pseudo-random but well-formed instruction stream from a
// seed: a mix of ALU ops, mul/div, FP, loads and stores with varying address
// patterns and register dependencies.
func genStream(seed int64, n int) []trace.Dyn {
	rng := rand.New(rand.NewSource(seed))
	dyns := make([]trace.Dyn, 0, n)
	reg := func() isa.Reg { return isa.R(1 + rng.Intn(28)) }
	freg := func() isa.Reg { return isa.F(rng.Intn(28)) }
	addr := func() uint64 {
		switch rng.Intn(3) {
		case 0: // hot line cluster
			return 0x10000 + uint64(rng.Intn(8))*8
		case 1: // strided
			return 0x20000 + uint64(rng.Intn(64))*128
		default: // scattered (misses)
			return 0x40000 + uint64(rng.Intn(1<<14))*32
		}
	}
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			dyns = append(dyns, trace.Dyn{Op: isa.Add, Class: isa.ClassIntALU,
				Dst: reg(), Src1: reg(), Src2: reg()})
		case 4:
			dyns = append(dyns, trace.Dyn{Op: isa.Mul, Class: isa.ClassIntMul,
				Dst: reg(), Src1: reg(), Src2: reg()})
		case 5:
			dyns = append(dyns, trace.Dyn{Op: isa.Div, Class: isa.ClassIntDiv,
				Dst: reg(), Src1: reg(), Src2: reg()})
		case 6:
			dyns = append(dyns, trace.Dyn{Op: isa.FAdd, Class: isa.ClassFPAdd,
				Dst: freg(), Src1: freg(), Src2: freg()})
		case 7, 8:
			size := []uint8{1, 4, 8}[rng.Intn(3)]
			a := addr() &^ uint64(size-1)
			dyns = append(dyns, trace.Dyn{Op: isa.Ld, Class: isa.ClassLoad,
				Dst: reg(), Src1: reg(), Addr: a, Size: size})
		default:
			size := []uint8{1, 4, 8}[rng.Intn(3)]
			a := addr() &^ uint64(size-1)
			dyns = append(dyns, trace.Dyn{Op: isa.Sd, Class: isa.ClassStore,
				Src1: reg(), Src2: reg(), Addr: a, Size: size})
		}
	}
	return dyns
}

func arbiters(t testing.TB) []ports.Arbiter {
	t.Helper()
	mk := func(a ports.Arbiter, err error) ports.Arbiter {
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	lb, err := core.New(core.Config{Banks: 4, LinePorts: 2, LineSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := core.New(core.Config{Banks: 4, LinePorts: 2, LineSize: 32, Policy: core.PolicyGreedy})
	if err != nil {
		t.Fatal(err)
	}
	return []ports.Arbiter{
		mk(ports.NewIdeal(1)),
		mk(ports.NewIdeal(4)),
		mk(ports.NewReplicated(2)),
		mk(ports.NewBanked(4, 32)),
		mk(ports.NewBankedSelector(4, 32, ports.XorFold)),
		mk(ports.NewBankedSelector(4, 32, ports.WordInterleave)),
		lb,
		greedy,
	}
}

// Every random stream drains completely on every arbiter, with coherent
// final statistics: no deadlock, no lost or duplicated instructions.
func TestStressAllArbitersDrain(t *testing.T) {
	const n = 3000
	for seed := int64(1); seed <= 6; seed++ {
		for _, arb := range arbiters(t) {
			dyns := genStream(seed, n)
			hier, err := cache.NewHierarchy(cache.DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.MaxCycles = 2_000_000
			c, err := New(trace.NewSliceStream(dyns), hier, arb, cfg)
			if err != nil {
				t.Fatal(err)
			}
			st, err := c.Run()
			if err != nil {
				t.Fatalf("seed %d on %s: %v", seed, arb.Name(), err)
			}
			if st.Committed != n || st.Dispatched != n {
				t.Fatalf("seed %d on %s: committed/dispatched %d/%d, want %d",
					seed, arb.Name(), st.Committed, st.Dispatched, n)
			}
			if st.Cycles == 0 || st.Cycles > cfg.MaxCycles {
				t.Fatalf("seed %d on %s: cycles %d", seed, arb.Name(), st.Cycles)
			}
			mem := hier.Stats()
			if mem.Hits+mem.MissesNew+mem.MissesMerge+mem.Blocked != mem.Accesses {
				t.Fatalf("seed %d on %s: hierarchy accounting broken: %+v", seed, arb.Name(), mem)
			}
		}
	}
}

// Property: adding ideal ports never makes a stream meaningfully slower.
// (Exact monotonicity does not hold in a pipelined model: faster early loads
// shift miss timing and MSHR/L2 queue occupancy, producing classic
// scheduling anomalies of a few cycles — so a small slack is allowed.)
func TestStressIdealPortMonotonicity(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seed := int64(seedRaw)
		prev := uint64(1 << 62)
		for _, p := range []int{1, 2, 4, 8} {
			dyns := genStream(seed, 1500)
			hier, err := cache.NewHierarchy(cache.DefaultParams())
			if err != nil {
				return false
			}
			arb, err := ports.NewIdeal(p)
			if err != nil {
				return false
			}
			cfg := DefaultConfig()
			cfg.MaxCycles = 2_000_000
			c, err := New(trace.NewSliceStream(dyns), hier, arb, cfg)
			if err != nil {
				return false
			}
			st, err := c.Run()
			if err != nil || st.Committed != 1500 {
				return false
			}
			if st.Cycles > prev+prev/20+8 {
				return false
			}
			if st.Cycles < prev {
				prev = st.Cycles
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: constrained windows still drain and respect the commit bound
// (IPC can never exceed the RUU size or the commit width).
func TestStressTinyWindows(t *testing.T) {
	f := func(seedRaw uint16, ruuRaw, lsqRaw uint8) bool {
		ruu := 2 + int(ruuRaw%62)
		lsq := 1 + int(lsqRaw)%ruu
		dyns := genStream(int64(seedRaw), 800)
		hier, err := cache.NewHierarchy(cache.DefaultParams())
		if err != nil {
			return false
		}
		arb, err := ports.NewIdeal(2)
		if err != nil {
			return false
		}
		cfg := DefaultConfig()
		cfg.RUUSize = ruu
		cfg.LSQSize = lsq
		cfg.StoreBufferSize = 2
		cfg.MaxCycles = 4_000_000
		c, err := New(trace.NewSliceStream(dyns), hier, arb, cfg)
		if err != nil {
			return false
		}
		st, err := c.Run()
		if err != nil || st.Committed != 800 {
			return false
		}
		return st.IPC() <= float64(ruu)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// The same stream on the same configuration always costs the same cycles.
func TestStressDeterminism(t *testing.T) {
	run := func() uint64 {
		dyns := genStream(42, 2000)
		hier, _ := cache.NewHierarchy(cache.DefaultParams())
		arb, _ := core.New(core.Config{Banks: 4, LinePorts: 2, LineSize: 32})
		cfg := DefaultConfig()
		cfg.MaxCycles = 1_000_000
		c, _ := New(trace.NewSliceStream(dyns), hier, arb, cfg)
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("nondeterministic: %d vs %d cycles", a, b)
	}
}
