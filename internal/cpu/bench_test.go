package cpu

import (
	"testing"

	"lbic/internal/cache"
	"lbic/internal/ports"
	"lbic/internal/trace"
)

// loopStream replays a fixed instruction pattern forever with consecutive
// sequence numbers and allocates nothing per Next, so a benchmark can hold
// the core at steady state for arbitrarily many cycles.
type loopStream struct {
	pat []trace.Dyn
	i   int
	seq uint64
}

func (s *loopStream) Next(d *trace.Dyn) bool {
	*d = s.pat[s.i]
	d.Seq = s.seq
	s.seq++
	if s.i++; s.i == len(s.pat) {
		s.i = 0
	}
	return true
}

// benchPattern keeps a bounded working set (hits, periodic misses, forwarding
// pairs, store bursts) so steady state exercises every core path without
// growing any cache-side structure.
func benchPattern() []trace.Dyn {
	pat := make([]trace.Dyn, 0, 1024)
	for i := 0; len(pat) < 1024; i++ {
		addr := uint64(i%512) * 8
		switch i % 6 {
		case 0:
			pat = append(pat, load(r(1+i%8), r(20), addr))
		case 1:
			pat = append(pat, alu(r(9), r(1+i%8), r(10)))
		case 2:
			pat = append(pat, store(r(9), r(20), addr))
		case 3:
			pat = append(pat, load(r(11), r(20), addr)) // forwarded from case 2
		case 4:
			pat = append(pat, load(r(12), r(21), uint64(i%64)*4096)) // miss traffic
		default:
			pat = append(pat, alu(r(13), r(12), r(9)))
		}
	}
	return pat
}

func newBenchCore(tb testing.TB) *Core {
	tb.Helper()
	hier, err := cache.NewHierarchy(cache.DefaultParams())
	if err != nil {
		tb.Fatal(err)
	}
	arb, err := ports.NewBanked(4, 32)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 0 // the stream never ends; the benchmark bounds the run
	c, err := New(&loopStream{pat: benchPattern()}, hier, arb, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// warmSteps drives the core past the transient in which pools, free lists,
// and slice capacities grow to their steady-state size.
const warmSteps = 20_000

// BenchmarkCoreStep measures the steady-state cost of one pipeline cycle.
// The timing core is allocation-free at steady state (0 allocs/op, asserted
// by TestCoreStepZeroAlloc), so full-scale sweeps spend no time in the
// garbage collector.
func BenchmarkCoreStep(b *testing.B) {
	c := newBenchCore(b)
	for i := 0; i < warmSteps; i++ {
		if err := c.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCoreStepZeroAlloc pins the tentpole property down as a regression test:
// once warm, Step must not allocate. Skipped under the race detector, whose
// instrumentation allocates.
func TestCoreStepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	c := newBenchCore(t)
	for i := 0; i < warmSteps; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var stepErr error
	avg := testing.AllocsPerRun(5000, func() {
		if err := c.Step(); err != nil {
			stepErr = err
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if avg != 0 {
		t.Errorf("Step allocates %.4f objects/op at steady state, want 0", avg)
	}
}
