package cpu

import (
	"context"
	"fmt"
	"testing"

	"lbic/internal/cache"
	"lbic/internal/ports"
	"lbic/internal/tracecache"
	"lbic/internal/workload"
)

// laneBudget is the per-lane instruction budget of one BenchmarkLaneStep op.
// It is fixed — independent of both b.N and K — so every lane width sees the
// same warmup fraction and the same per-lane run length, and ns/op divided
// by (K * laneBudget) is a fair per-lane-instruction cost across K.
const laneBudget = 200_000

// BenchmarkLaneStep measures stepping K identical machine configurations in
// lockstep off one shared decode cursor. One op is a complete K-lane batch
// run of laneBudget instructions per lane; SetBytes counts lane-instructions
// ("bytes" = instructions, as in BenchmarkSimulatorThroughput), so the MB/s
// column is lane-instruction throughput — rising with K as the shared zipf
// synthesis is decoded once per dynamic instruction instead of once per
// lane. k1 is the scalar reference.
func BenchmarkLaneStep(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(k) * laneBudget)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				src, err := workload.GenParams{Kind: "zipf"}.Stream()
				if err != nil {
					b.Fatal(err)
				}
				cur := tracecache.NewSharedCursor(src, 2*LaneChunk)
				// A synthetic stream may be read ahead freely, exactly as
				// the batch simulation entry points configure it.
				cur.SetBatchFill(LaneChunk)
				cores := make([]*Core, k)
				for j := range cores {
					// A compact hierarchy geometry (8KB L1 / 64KB L2) keeps
					// the aggregate lane-private state host-cache-resident
					// at K=8, so the benchmark isolates the scheduling and
					// decode-sharing costs rather than the host machine's
					// LLC capacity.
					params := cache.DefaultParams()
					params.L1.Size = 8 << 10
					params.L2.Size = 64 << 10
					hier, err := cache.NewHierarchy(params)
					if err != nil {
						b.Fatal(err)
					}
					// Every lane runs the same port organization so the only
					// thing that changes across K is how many lanes share
					// each synthesized instruction.
					arb, err := ports.NewBanked(4, 32)
					if err != nil {
						b.Fatal(err)
					}
					cfg := DefaultConfig()
					cfg.MaxInsts = laneBudget
					cores[j], err = New(cur.NewLaneReader(), hier, arb, cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				for _, err := range RunLanes(context.Background(), cores) {
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				for j, c := range cores {
					if got := c.Stats().Dispatched; got != laneBudget {
						b.Fatalf("lane %d dispatched %d instructions, want %d", j, got, laneBudget)
					}
				}
				b.StartTimer()
			}
		})
	}
}
