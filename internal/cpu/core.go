package cpu

import (
	"context"
	"fmt"
	"math"
	"sort"

	"lbic/internal/cache"
	"lbic/internal/isa"
	"lbic/internal/metrics"
	"lbic/internal/ports"
	"lbic/internal/trace"
)

// entry state machine. Memory operations follow:
//
//	load:  waiting → ready → issued(AGU) → [order-parked | fwd-parked |
//	       mem-pending → mem-wait] → done
//	store: waiting → ready → issued(AGU) → wait-data → done → (commit:
//	       store buffer) → written
type state uint8

const (
	stEmpty state = iota
	stWaiting
	stReady
	stIssued
	stOrderParked // load: an older store's address is unknown
	stFwdParked   // load: waiting on a matching, unready store
	stMemPending  // load: competing for a cache port
	stMemWait     // load: cache access in flight
	stWaitData    // store: address generated, data operand pending
	stDone
)

var stateNames = [...]string{"empty", "waiting", "ready", "issued",
	"order-parked", "fwd-parked", "mem-pending", "mem-wait", "wait-data", "done"}

// String returns the state's diagnostic name.
func (s state) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "state(?)"
}

const (
	evExec    = iota // functional unit completes; result ready
	evAGU            // load/store address generation completes
	evMem            // cache completes a load
	evWrite          // cache completes a committed store's write
	wheelSize = 64   // must exceed every FU and hit latency
)

type event struct {
	kind int32
	idx  int32 // RUU index (evExec/evAGU/evMem) or store buffer slot (evWrite)
}

type entry struct {
	dyn       trace.Dyn
	state     state
	src1Ready bool
	src2Ready bool
	addrDone  bool
	deps      []int32 // packed dependent links: ruuIdx<<2 | operand
	// waiterHead chains the loads forward-parked on this entry (a store);
	// waiterNext threads this entry into another entry's chain (a load).
	// -1 terminates. The chains replace the old per-seq waiter map.
	waiterHead int32
	waiterNext int32
}

// fwdRef tracks an in-flight store for store-to-load forwarding, indexed by
// the 8-byte-aligned address granules the store touches (see fwdTable).
type fwdRef struct {
	seq  uint64
	addr uint64
	size uint8
	ruu  int32 // RUU index pre-commit, -(slot+1) once in store buffer slot
}

type storeBufEntry struct {
	seq        uint64
	addr       uint64
	size       uint8
	live       bool
	granted    bool
	waiterHead int32 // loads forward-parked on this committed store, -1 none
}

type orderRef struct {
	seq uint64
	idx int32
}

// Verifier observes the core's memory pipeline for invariant checking. The
// oracle in internal/oracle implements it; the interface lives here (with
// only ports/trace types in its signatures) so the checker can depend on the
// core without an import cycle. All hooks are called synchronously from
// Step; a violation is latched and surfaced via Err, which the core checks
// at the end of every cycle.
type Verifier interface {
	// ObserveDispatch sees every memory operation entering the window, in
	// program order, with its ground-truth address, size, and value.
	ObserveDispatch(d *trace.Dyn)
	// ObserveGrant sees every arbitration: the ready list handed to the
	// arbiter (possibly empty — stateful arbiters get a Grant call each
	// cycle) and the granted indices.
	ObserveGrant(now uint64, ready []ports.Request, granted []int)
	// ObserveAccess sees every granted request's hierarchy access; blocked
	// reports an MSHR-exhaustion rejection (the request will retry).
	ObserveAccess(now uint64, seq uint64, store, blocked bool)
	// ObserveForward sees a load serviced by store-to-load forwarding from
	// the store with sequence number storeSeq.
	ObserveForward(now uint64, loadSeq, storeSeq uint64)
	// Err returns the first latched invariant violation, or nil.
	Err() error
}

// Core simulates one program run cycle by cycle.
type Core struct {
	cfg    Config
	stream trace.Stream
	hier   *cache.Hierarchy
	arb    ports.Arbiter

	now   uint64
	stats Stats

	// Forward-progress watchdog: watchdog is the no-progress cycle limit
	// (0 = disabled), lastProgress the last cycle that committed an
	// instruction or retired a committed store.
	watchdog     uint64
	lastProgress uint64

	// fastForwarded counts cycles elided by the idle-cycle skip (still
	// included in Cycles; see fastforward.go).
	fastForwarded uint64

	// RUU ring.
	entries []entry
	head    int
	count   int
	nextSeq uint64

	// One-instruction lookahead into the stream.
	peeked    bool
	peekDyn   trace.Dyn
	streamEOF bool

	lastWriter [isa.NumRegs]int32 // RUU index producing each register, -1 if none

	readyQ readyHeap

	wheel [wheelSize][]event

	// LSQ-derived structures.
	lsqCount    int
	storeOrder  []orderRef // dispatched stores, FIFO from soHead; popped when address known
	soHead      int        // consumed prefix of storeOrder (compacted, never reallocated)
	orderParked []int32    // loads blocked on unknown older store addresses
	orderedMin  uint64     // barrier seq at the last orderParked scan (see releaseOrderParked)
	fwd         fwdTable   // store-forwarding index by address granule
	memPending  []int32    // loads ready for a port, ascending seq

	// Committed store buffer (FIFO ring over slots).
	storeBuf    []storeBufEntry
	sbHead      int
	sbCount     int
	sbUngranted int // live slots not yet granted a cache port
	storeLive   int // live (incl. granted, unwritten) stores

	// Per-cycle FU accounting.
	fuUsed [isa.NumClasses]int      // pipelined issues this cycle
	fuBusy [isa.NumClasses][]uint64 // release times for unpipelined units

	reqBuf   []ports.Request
	reqIdx   []int32 // parallel: RUU index (loads) or -(slot+1) (stores)
	grantBuf []int

	// Pooled scratch for per-cycle stages, so steady-state stepping never
	// allocates.
	releaseScratch  []int32
	sidelineScratch []int32

	// arbQuiescent is non-nil when the arbiter implements ports.Quiescer;
	// fast-forward needs it to prove the arbiter holds no queued work.
	arbQuiescent func() bool

	// Observability. The gauges and histogram are live metric objects a
	// run report's registry adopts; events is nil unless a structured
	// event trace was requested.
	grantHist *metrics.Histogram
	ruuOcc    *metrics.Gauge
	lsqOcc    *metrics.Gauge
	sbOcc     *metrics.Gauge
	events    trace.EventSink
	lineShift uint // log2(L1 line size), for event line numbers

	// verify, when non-nil, receives the memory-pipeline observations and
	// enables the per-cycle self-checks (CPI stall stack sums to cycles).
	verify Verifier
}

// New prepares a run of stream against the given memory hierarchy and port
// arbiter.
func New(stream trace.Stream, hier *cache.Hierarchy, arb ports.Arbiter, cfg Config) (*Core, error) {
	if stream == nil {
		return nil, fmt.Errorf("cpu: nil instruction stream")
	}
	if hier == nil {
		return nil, fmt.Errorf("cpu: nil memory hierarchy")
	}
	if arb == nil {
		return nil, fmt.Errorf("cpu: nil port arbiter")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if hier.Params().HitLat >= wheelSize {
		return nil, fmt.Errorf("cpu: hit latency %d exceeds event wheel %d", hier.Params().HitLat, wheelSize)
	}
	c := &Core{
		cfg:      cfg,
		stream:   stream,
		hier:     hier,
		arb:      arb,
		entries:  make([]entry, cfg.RUUSize),
		storeBuf: make([]storeBufEntry, cfg.StoreBufferSize),
		grantHist: metrics.NewHistogram("cpu.grants_per_cycle",
			"port grants per cycle (arbiter bandwidth actually used)",
			"grants", arb.PeakWidth()+1),
		ruuOcc:    metrics.NewGauge("cpu.ruu_occupancy", "instructions in the window per commit cycle"),
		lsqOcc:    metrics.NewGauge("cpu.lsq_occupancy", "memory operations in the LSQ per commit cycle"),
		sbOcc:     metrics.NewGauge("cpu.storebuf_occupancy", "committed stores awaiting write per commit cycle"),
		lineShift: uint(hier.Params().L1.LineBits()),
	}
	c.orderedMin = math.MaxUint64
	switch {
	case cfg.WatchdogCycles == 0:
		c.watchdog = DefaultWatchdogCycles
	case cfg.WatchdogCycles > 0:
		c.watchdog = uint64(cfg.WatchdogCycles)
	}
	for r := range c.lastWriter {
		c.lastWriter[r] = -1
	}
	for i := range c.entries {
		c.entries[i].waiterHead = -1
		c.entries[i].waiterNext = -1
	}
	// Every store with a generated address is in the LSQ or the store buffer
	// and touches at most two granules, bounding the forwarding index.
	c.fwd.init(2 * (cfg.LSQSize + cfg.StoreBufferSize))
	if q, ok := arb.(ports.Quiescer); ok {
		c.arbQuiescent = q.Quiescent
	}
	c.readyQ.core = c
	return c, nil
}

// Stats returns a snapshot of the run statistics.
func (c *Core) Stats() Stats {
	s := c.stats
	s.Cycles = c.now
	return s
}

// Now returns the current cycle.
func (c *Core) Now() uint64 { return c.now }

// SetEventSink directs the structured event trace to s (nil disables it).
// Set it before the first Step.
func (c *Core) SetEventSink(s trace.EventSink) { c.events = s }

// SetVerifier attaches an invariant checker (nil disables verification).
// Set it before the first Step; Step fails on the first latched violation.
func (c *Core) SetVerifier(v Verifier) { c.verify = v }

// GrantsPerCycle returns the live per-cycle port-grant histogram.
func (c *Core) GrantsPerCycle() *metrics.Histogram { return c.grantHist }

// OccupancyGauges returns the live per-cycle occupancy gauges: RUU, LSQ,
// and store buffer.
func (c *Core) OccupancyGauges() []*metrics.Gauge {
	return []*metrics.Gauge{c.ruuOcc, c.lsqOcc, c.sbOcc}
}

// Done reports whether the run has fully drained.
func (c *Core) Done() bool {
	return c.fetchExhausted() && c.count == 0 && c.storeLive == 0
}

func (c *Core) fetchExhausted() bool {
	if c.cfg.MaxInsts > 0 && c.stats.Dispatched >= c.cfg.MaxInsts {
		return true
	}
	return c.streamEOF && !c.peeked
}

// Run steps the core until completion and returns the statistics.
func (c *Core) Run() (Stats, error) {
	return c.RunContext(context.Background())
}

// ctxCheckInterval is how often RunContext polls its context, in cycles: a
// per-cycle check would cost an interface call in the hottest loop, and a
// few thousand cycles of cancellation latency is far below human-visible.
const ctxCheckInterval = 4096

// RunContext steps the core until completion, cooperatively honoring ctx:
// cancellation (or deadline expiry) aborts the run within ctxCheckInterval
// cycles with the context's error. This is what makes per-cell deadlines in
// sweep runners effective without killing the process.
func (c *Core) RunContext(ctx context.Context) (Stats, error) {
	countdown := uint64(0)
	for !c.Done() {
		if countdown == 0 {
			if err := ctx.Err(); err != nil {
				return c.Stats(), fmt.Errorf("cpu: run canceled at cycle %d (committed %d of %d dispatched): %w",
					c.now, c.stats.Committed, c.stats.Dispatched, err)
			}
			countdown = ctxCheckInterval
		}
		countdown--
		if err := c.Step(); err != nil {
			return c.Stats(), err
		}
		if n := c.idleCycles(); n > 0 {
			c.skipIdle(n)
		}
	}
	return c.Stats(), nil
}

// Step advances the simulation by one cycle.
func (c *Core) Step() error {
	if c.cfg.MaxCycles > 0 && c.now >= c.cfg.MaxCycles {
		return fmt.Errorf("cpu: exceeded %d cycles (committed %d of %d dispatched; RUU %d, head state %d)",
			c.cfg.MaxCycles, c.stats.Committed, c.stats.Dispatched, c.count, c.entries[c.head].state)
	}
	commit0 := c.stats.Committed
	sbStall0 := c.stats.CommitStallStoreBuf
	ruuStall0 := c.stats.DispatchStallRUU
	lsqStall0 := c.stats.DispatchStallLSQ
	c.hier.Advance(c.now)
	c.processEvents()
	c.releaseOrderParked()
	c.commit()
	c.memoryIssue()
	c.issue()
	c.dispatch()
	c.drainCompletions()
	c.accountCycle(commit0, sbStall0, ruuStall0, lsqStall0)
	if c.stats.Committed > commit0 {
		c.lastProgress = c.now
	}
	if c.watchdog != 0 && c.now-c.lastProgress >= c.watchdog {
		return c.hangError()
	}
	if c.verify != nil {
		if err := c.verify.Err(); err != nil {
			return fmt.Errorf("cpu: verify failed at cycle %d: %w", c.now, err)
		}
		var sum uint64
		for _, n := range c.stats.StallCycles {
			sum += n
		}
		if sum != c.now+1 {
			return fmt.Errorf("cpu: verify failed at cycle %d: CPI stall buckets sum to %d, want %d",
				c.now, sum, c.now+1)
		}
	}
	c.now++
	return nil
}

// --- events and wakeup ---

func (c *Core) schedule(at uint64, ev event) {
	if at <= c.now {
		at = c.now + 1
	}
	if at-c.now >= wheelSize {
		panic(fmt.Sprintf("cpu: event latency %d exceeds wheel", at-c.now))
	}
	slot := at % wheelSize
	c.wheel[slot] = append(c.wheel[slot], ev)
}

func (c *Core) processEvents() {
	slot := c.now % wheelSize
	evs := c.wheel[slot]
	c.wheel[slot] = evs[:0]
	// The slice is reused immediately; iterate over a stable copy by index,
	// but new events always target future slots, so in-place iteration is
	// safe as long as we re-read length (appends to this slot are imposs.).
	for i := 0; i < len(evs); i++ {
		ev := evs[i]
		switch ev.kind {
		case evExec:
			c.complete(ev.idx)
		case evAGU:
			c.addrGenerated(ev.idx)
		case evMem:
			c.complete(ev.idx)
		case evWrite:
			c.storeWritten(int(ev.idx))
		}
	}
}

// complete marks an instruction's result ready and wakes dependents.
func (c *Core) complete(idx int32) {
	e := &c.entries[idx]
	e.state = stDone
	deps := e.deps
	e.deps = e.deps[:0]
	for _, d := range deps {
		c.wake(d>>2, int(d&3))
	}
}

func (c *Core) wake(idx int32, operand int) {
	e := &c.entries[idx]
	if operand == 1 {
		e.src1Ready = true
	} else {
		e.src2Ready = true
	}
	switch {
	case e.dyn.IsStore():
		if operand == 1 && e.state == stWaiting {
			c.pushReady(idx)
		} else if operand == 2 && e.state == stWaitData {
			c.storeDone(idx)
		}
	case e.state == stWaiting && e.src1Ready && e.src2Ready:
		c.pushReady(idx)
	}
}

func (c *Core) pushReady(idx int32) {
	c.entries[idx].state = stReady
	c.readyQ.push(idx)
}

// --- stores: address generation, completion, forwarding bookkeeping ---

// addrGenerated handles AGU completion for loads and stores.
func (c *Core) addrGenerated(idx int32) {
	e := &c.entries[idx]
	e.addrDone = true
	if e.dyn.IsStore() {
		c.registerForward(e.dyn.Seq, e.dyn.Addr, e.dyn.Size, idx)
		if e.src2Ready {
			c.storeDone(idx)
		} else {
			e.state = stWaitData
		}
		return
	}
	c.routeLoad(idx)
}

// storeDone marks a store complete (address and data ready): it becomes
// committable and can now satisfy forwarding loads parked on it.
func (c *Core) storeDone(idx int32) {
	e := &c.entries[idx]
	e.state = stDone
	c.wakeChain(&e.waiterHead)
}

func granules(addr uint64, size uint8) (uint64, uint64) {
	return addr >> 3, (addr + uint64(size) - 1) >> 3
}

func (c *Core) registerForward(seq, addr uint64, size uint8, ruu int32) {
	g0, g1 := granules(addr, size)
	ref := fwdRef{seq: seq, addr: addr, size: size, ruu: ruu}
	c.fwd.insert(g0, ref)
	if g1 != g0 {
		c.fwd.insert(g1, ref)
	}
}

func (c *Core) dropForward(seq, addr uint64, size uint8) {
	g0, g1 := granules(addr, size)
	c.fwd.remove(g0, seq)
	if g1 != g0 {
		c.fwd.remove(g1, seq)
	}
}

// commitForward re-tags a store's forwarding refs as committed into the given
// store buffer slot: the data is always ready, and later waiters park on the
// slot rather than the recycled RUU entry.
func (c *Core) commitForward(seq, addr uint64, size uint8, slot int) {
	g0, g1 := granules(addr, size)
	ruu := -int32(slot) - 1
	c.fwd.retag(g0, seq, ruu)
	if g1 != g0 {
		c.fwd.retag(g1, seq, ruu)
	}
}

// wakeChain re-routes every load parked on a store's waiter chain. The head
// is reset before routing and each link is read before its load is routed, so
// a load that re-parks on the same store mid-wake is safe.
func (c *Core) wakeChain(head *int32) {
	idx := *head
	*head = -1
	for idx >= 0 {
		next := c.entries[idx].waiterNext
		c.entries[idx].waiterNext = -1
		c.routeLoad(idx)
		idx = next
	}
}

// --- loads: ordering, forwarding, port scheduling ---

// minUnknownStoreSeq returns the sequence number of the oldest store whose
// address is not yet generated, or MaxUint64 if all are known.
func (c *Core) minUnknownStoreSeq() uint64 {
	for c.soHead < len(c.storeOrder) {
		ref := c.storeOrder[c.soHead]
		e := &c.entries[ref.idx]
		if e.dyn.Seq == ref.seq && !e.addrDone {
			c.compactStoreOrder()
			return ref.seq
		}
		c.soHead++
	}
	c.storeOrder = c.storeOrder[:0]
	c.soHead = 0
	return math.MaxUint64
}

// compactStoreOrder slides the live suffix to the front once the consumed
// prefix dominates, so the backing array is reused instead of regrown (the
// old `storeOrder = storeOrder[1:]` pops leaked capacity forever).
func (c *Core) compactStoreOrder() {
	if c.soHead > 32 && c.soHead*2 >= len(c.storeOrder) {
		n := copy(c.storeOrder, c.storeOrder[c.soHead:])
		c.storeOrder = c.storeOrder[:n]
		c.soHead = 0
	}
}

// routeLoad decides what happens to a load whose address is generated:
// park on ordering, forward, park on a store, or queue for a cache port.
func (c *Core) routeLoad(idx int32) {
	e := &c.entries[idx]
	if c.minUnknownStoreSeq() < e.dyn.Seq {
		e.state = stOrderParked
		c.orderParked = append(c.orderParked, idx)
		c.stats.OrderingStalls++
		return
	}
	switch best, disp := c.tryForward(idx); disp {
	case fwdServiced:
		c.stats.Forwards++
		if c.verify != nil {
			c.verify.ObserveForward(c.now, e.dyn.Seq, best.seq)
		}
		c.schedule(c.now+1, event{kind: evMem, idx: idx})
		e.state = stMemWait
		return
	case fwdBlocked:
		e.state = stFwdParked
		var head *int32
		if best.ruu >= 0 {
			head = &c.entries[best.ruu].waiterHead
		} else {
			head = &c.storeBuf[-best.ruu-1].waiterHead
		}
		e.waiterNext = *head
		*head = idx
		c.stats.ForwardWaits++
		return
	}
	e.state = stMemPending
	c.insertMemPending(idx)
}

// fwdDisposition is the result of a forwarding lookup.
type fwdDisposition uint8

const (
	// fwdNone: no overlapping older store; the load goes to the cache.
	fwdNone fwdDisposition = iota
	// fwdServiced: a ready covering store services the load at zero latency.
	fwdServiced
	// fwdBlocked: the load must wait on the returned store sequence number
	// (unready data, or a partial overlap that cannot forward).
	fwdBlocked
)

// tryForward finds the youngest older store overlapping the load and decides
// the load's disposition; for fwdServiced and fwdBlocked the returned ref
// identifies that store (seq for reporting, ruu for where to park).
func (c *Core) tryForward(idx int32) (fwdRef, fwdDisposition) {
	e := &c.entries[idx]
	addr, size, seq := e.dyn.Addr, e.dyn.Size, e.dyn.Seq
	g0, g1 := granules(addr, size)
	best := fwdRef{}
	found := false
	scan := func(g uint64) {
		for ni := *c.fwd.bucket(g); ni >= 0; ni = c.fwd.nodes[ni].next {
			n := &c.fwd.nodes[ni]
			if n.g != g {
				continue // bucket shared by another granule
			}
			ref := n.ref
			if ref.seq >= seq {
				continue
			}
			if ref.addr >= addr+uint64(size) || addr >= ref.addr+uint64(ref.size) {
				continue // no overlap
			}
			if !found || ref.seq > best.seq {
				best, found = ref, true
			}
		}
	}
	scan(g0)
	if g1 != g0 {
		scan(g1)
	}
	if !found {
		return best, fwdNone
	}
	covers := best.addr <= addr && best.addr+uint64(best.size) >= addr+uint64(size)
	ready := best.ruu < 0 || c.entries[best.ruu].state == stDone
	if covers && ready {
		return best, fwdServiced
	}
	// Partial overlap, or the matching store's data is not ready: wait on it.
	return best, fwdBlocked
}

func (c *Core) insertMemPending(idx int32) {
	seq := c.entries[idx].dyn.Seq
	i := sort.Search(len(c.memPending), func(i int) bool {
		return c.entries[c.memPending[i]].dyn.Seq > seq
	})
	c.memPending = append(c.memPending, 0)
	copy(c.memPending[i+1:], c.memPending[i:])
	c.memPending[i] = idx
}

func (c *Core) removeMemPending(idx int32) {
	seq := c.entries[idx].dyn.Seq
	i := sort.Search(len(c.memPending), func(i int) bool {
		return c.entries[c.memPending[i]].dyn.Seq >= seq
	})
	if i < len(c.memPending) && c.memPending[i] == idx {
		c.memPending = append(c.memPending[:i], c.memPending[i+1:]...)
	}
}

// releaseOrderParked re-routes loads whose ordering barrier has cleared.
//
// The scan is skipped while the barrier sequence is unchanged since the last
// scan: every load parked since then saw the same barrier when it was routed
// (finite barrier values are strictly increasing — stores dispatch in order
// and the MaxUint64 "no barrier" state releases the whole park list), so no
// parked load can have become eligible.
func (c *Core) releaseOrderParked() {
	if len(c.orderParked) == 0 {
		return
	}
	min := c.minUnknownStoreSeq()
	if min == c.orderedMin {
		return
	}
	c.orderedMin = min
	kept := c.orderParked[:0]
	release := c.releaseScratch[:0]
	for _, idx := range c.orderParked {
		if c.entries[idx].dyn.Seq < min {
			release = append(release, idx)
		} else {
			kept = append(kept, idx)
		}
	}
	c.orderParked = kept
	for _, idx := range release {
		c.routeLoad(idx)
	}
	c.releaseScratch = release
}

// --- commit ---

func (c *Core) commit() {
	for n := 0; n < c.cfg.CommitWidth && c.count > 0; n++ {
		idx := int32(c.head)
		e := &c.entries[idx]
		if e.state != stDone {
			return
		}
		if e.dyn.IsStore() {
			if c.sbCount == c.cfg.StoreBufferSize {
				c.stats.CommitStallStoreBuf++
				return
			}
			slot := c.sbHead + c.sbCount
			if slot >= c.cfg.StoreBufferSize {
				slot -= c.cfg.StoreBufferSize
			}
			// Waiters parked on the RUU entry migrate to the slot's chain.
			c.storeBuf[slot] = storeBufEntry{seq: e.dyn.Seq, addr: e.dyn.Addr, size: e.dyn.Size,
				live: true, waiterHead: e.waiterHead}
			e.waiterHead = -1
			c.sbCount++
			c.sbUngranted++
			c.storeLive++
			c.commitForward(e.dyn.Seq, e.dyn.Addr, e.dyn.Size, slot)
			c.stats.Stores++
			c.lsqCount--
		} else if e.dyn.IsLoad() {
			c.stats.Loads++
			c.lsqCount--
		}
		if d := e.dyn.Dst; d != isa.RegNone && c.lastWriter[d] == idx {
			c.lastWriter[d] = -1
		}
		e.state = stEmpty
		e.deps = e.deps[:0]
		if c.head++; c.head == c.cfg.RUUSize {
			c.head = 0
		}
		c.count--
		c.stats.Committed++
	}
}

// --- memory port arbitration ---

func (c *Core) memoryIssue() {
	c.reqBuf = c.reqBuf[:0]
	c.reqIdx = c.reqIdx[:0]
	// Committed stores first: they are the oldest memory operations. The
	// scan visits FIFO order but only ungranted live slots contribute, so it
	// stops once all of them are collected (and never starts when none are).
	if c.sbUngranted > 0 {
		slot, left := c.sbHead, c.sbUngranted
		for i := 0; i < c.sbCount && len(c.reqBuf) < c.cfg.MemScanDepth; i++ {
			sb := &c.storeBuf[slot]
			cur := slot
			if slot++; slot == c.cfg.StoreBufferSize {
				slot = 0
			}
			if !sb.live || sb.granted {
				continue
			}
			c.reqBuf = append(c.reqBuf, ports.Request{Seq: sb.seq, Addr: sb.addr, Store: true})
			c.reqIdx = append(c.reqIdx, -int32(cur)-1)
			if left--; left == 0 {
				break
			}
		}
	}
	for _, idx := range c.memPending {
		if len(c.reqBuf) >= c.cfg.MemScanDepth {
			break
		}
		e := &c.entries[idx]
		c.reqBuf = append(c.reqBuf, ports.Request{Seq: e.dyn.Seq, Addr: e.dyn.Addr, Store: false})
		c.reqIdx = append(c.reqIdx, idx)
	}
	if len(c.reqBuf) == 0 {
		// Still give stateful arbiters (LBIC store-queue drain) their cycle.
		c.grantBuf = c.arb.Grant(c.now, nil, c.grantBuf[:0])
		if c.verify != nil {
			c.verify.ObserveGrant(c.now, nil, c.grantBuf)
		}
		c.grantHist.Observe(0)
		return
	}
	c.grantBuf = c.arb.Grant(c.now, c.reqBuf, c.grantBuf[:0])
	if c.verify != nil {
		c.verify.ObserveGrant(c.now, c.reqBuf, c.grantBuf)
	}
	c.grantHist.Observe(len(c.grantBuf))
	for _, g := range c.grantBuf {
		r := c.reqBuf[g]
		id := c.reqIdx[g]
		c.stats.PortGrants++
		var token int64
		if r.Store {
			token = int64(c.cfg.RUUSize) + int64(-id-1)
		} else {
			token = int64(id)
		}
		out := c.hier.Access(c.now, r.Addr, r.Store, token)
		if c.verify != nil {
			c.verify.ObserveAccess(c.now, r.Seq, r.Store, out == cache.Blocked)
		}
		if c.events != nil {
			kind := trace.EvAccess
			if r.Store {
				kind = trace.EvWrite
			}
			c.events.Emit(trace.Event{Cycle: c.now, Kind: kind, Seq: int64(r.Seq),
				Bank: -1, Line: r.Addr >> c.lineShift, Cause: out.String()})
		}
		switch out {
		case cache.Blocked:
			c.stats.PortBlocked++
		default:
			if r.Store {
				slot := int(-id - 1)
				sb := &c.storeBuf[slot]
				sb.granted = true
				c.sbUngranted--
				c.dropForward(sb.seq, sb.addr, sb.size)
				c.wakeChain(&sb.waiterHead)
			} else {
				c.removeMemPending(id)
				c.entries[id].state = stMemWait
			}
		}
	}
}

// storeWritten retires a written store from the buffer.
func (c *Core) storeWritten(slot int) {
	c.storeBuf[slot].live = false
	c.storeLive--
	c.lastProgress = c.now
	for c.sbCount > 0 {
		head := &c.storeBuf[c.sbHead]
		if head.live {
			break
		}
		if c.sbHead++; c.sbHead == c.cfg.StoreBufferSize {
			c.sbHead = 0
		}
		c.sbCount--
	}
}

// drainCompletions converts hierarchy completions into wheel events.
func (c *Core) drainCompletions() {
	for _, comp := range c.hier.Drain() {
		if comp.Token >= int64(c.cfg.RUUSize) {
			c.schedule(comp.At, event{kind: evWrite, idx: int32(comp.Token - int64(c.cfg.RUUSize))})
		} else {
			c.schedule(comp.At, event{kind: evMem, idx: int32(comp.Token)})
		}
	}
}

// --- issue ---

func (c *Core) fuAvailable(cl isa.Class) bool {
	lat := isa.LatencyOf(cl)
	n := c.cfg.FUCount[cl]
	if lat.Issue <= 1 {
		return c.fuUsed[cl] < n
	}
	busy := c.fuBusy[cl]
	live := busy[:0]
	for _, rel := range busy {
		if rel > c.now {
			live = append(live, rel)
		}
	}
	c.fuBusy[cl] = live
	return len(live) < n
}

func (c *Core) fuOccupy(cl isa.Class) {
	lat := isa.LatencyOf(cl)
	if lat.Issue <= 1 {
		c.fuUsed[cl]++
		return
	}
	c.fuBusy[cl] = append(c.fuBusy[cl], c.now+uint64(lat.Issue))
}

func (c *Core) issue() {
	for cl := range c.fuUsed {
		c.fuUsed[cl] = 0
	}
	budget := c.cfg.IssueWidth
	attempts := c.readyQ.Len()
	sidelined := c.sidelineScratch[:0]
	for budget > 0 && attempts > 0 && c.readyQ.Len() > 0 {
		attempts--
		idx := c.readyQ.pop()
		e := &c.entries[idx]
		cl := e.dyn.Class
		if !c.fuAvailable(cl) {
			sidelined = append(sidelined, idx)
			continue
		}
		c.fuOccupy(cl)
		budget--
		c.stats.Issued++
		c.stats.IssuedByClass[cl]++
		e.state = stIssued
		if e.dyn.IsMem() {
			c.schedule(c.now+uint64(isa.LatencyOf(cl).Total), event{kind: evAGU, idx: idx})
		} else {
			c.schedule(c.now+uint64(isa.LatencyOf(cl).Total), event{kind: evExec, idx: idx})
		}
	}
	for _, idx := range sidelined {
		c.entries[idx].state = stReady
		c.readyQ.push(idx)
	}
	c.sidelineScratch = sidelined
}

// --- dispatch ---

// peek exposes the next undispatched instruction without consuming it. The
// returned pointer aliases the lookahead buffer and is only valid until the
// next peek or dispatch.
func (c *Core) peek() (*trace.Dyn, bool) {
	if c.peeked {
		return &c.peekDyn, true
	}
	if c.streamEOF {
		return nil, false
	}
	if !c.stream.Next(&c.peekDyn) {
		c.streamEOF = true
		return nil, false
	}
	c.peeked = true
	return &c.peekDyn, true
}

func (c *Core) dispatch() {
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.cfg.MaxInsts > 0 && c.stats.Dispatched >= c.cfg.MaxInsts {
			return
		}
		if c.count == c.cfg.RUUSize {
			c.stats.DispatchStallRUU++
			return
		}
		dyn, ok := c.peek()
		if !ok {
			return
		}
		if dyn.IsMem() && c.lsqCount == c.cfg.LSQSize {
			c.stats.DispatchStallLSQ++
			return
		}
		c.peeked = false
		tail := c.head + c.count
		if tail >= c.cfg.RUUSize {
			tail -= c.cfg.RUUSize
		}
		idx := int32(tail)
		c.count++
		c.stats.Dispatched++

		e := &c.entries[idx]
		*e = entry{dyn: *dyn, deps: e.deps[:0], waiterHead: -1, waiterNext: -1}
		e.dyn.Seq = c.nextSeq
		c.nextSeq++
		if c.verify != nil && e.dyn.IsMem() {
			c.verify.ObserveDispatch(&e.dyn)
		}
		e.src1Ready = c.wireSource(e.dyn.Src1, idx, 1)
		e.src2Ready = c.wireSource(e.dyn.Src2, idx, 2)

		switch {
		case e.dyn.Class == isa.ClassNone:
			e.state = stDone
		case e.dyn.IsStore():
			c.lsqCount++
			c.storeOrder = append(c.storeOrder, orderRef{seq: e.dyn.Seq, idx: idx})
			if e.src1Ready {
				c.pushReady(idx)
			} else {
				e.state = stWaiting
			}
		case e.dyn.IsLoad():
			c.lsqCount++
			fallthrough
		default:
			if e.src1Ready && e.src2Ready {
				c.pushReady(idx)
			} else {
				e.state = stWaiting
			}
		}
		if d := e.dyn.Dst; d != isa.RegNone {
			c.lastWriter[d] = idx
		}
	}
}

// wireSource links a source operand to its producer, reporting whether the
// operand is already available.
func (c *Core) wireSource(r isa.Reg, idx int32, operand int) bool {
	if r == isa.RegNone {
		return true
	}
	p := c.lastWriter[r]
	if p < 0 {
		return true
	}
	prod := &c.entries[p]
	if prod.state == stDone {
		return true
	}
	prod.deps = append(prod.deps, idx<<2|int32(operand))
	return false
}

// --- ready queue (hand-rolled min-heap by sequence number) ---
//
// container/heap would box every int32 through an interface on each
// push/pop; issue is the hottest stage, so the sift loops are inlined here.
// Each node carries its entry's (immutable while queued) sequence number so
// comparisons stay inside the heap's own backing array instead of chasing
// RUU entries through a cold cache line per probe.

type readyNode struct {
	seq uint64
	idx int32
}

type readyHeap struct {
	core  *Core
	nodes []readyNode
}

// Len returns the number of ready instructions.
func (h *readyHeap) Len() int { return len(h.nodes) }

func (h *readyHeap) push(v int32) {
	n := readyNode{seq: h.core.entries[v].dyn.Seq, idx: v}
	h.nodes = append(h.nodes, n)
	i := len(h.nodes) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if n.seq >= h.nodes[parent].seq {
			break
		}
		h.nodes[i], h.nodes[parent] = h.nodes[parent], h.nodes[i]
		i = parent
	}
}

func (h *readyHeap) pop() int32 {
	top := h.nodes[0].idx
	last := len(h.nodes) - 1
	h.nodes[0] = h.nodes[last]
	h.nodes = h.nodes[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.nodes[l].seq < h.nodes[smallest].seq {
			smallest = l
		}
		if r < last && h.nodes[r].seq < h.nodes[smallest].seq {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.nodes[i], h.nodes[smallest] = h.nodes[smallest], h.nodes[i]
		i = smallest
	}
	return top
}
