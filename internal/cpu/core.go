package cpu

import (
	"context"
	"fmt"
	"math"
	"sort"

	"lbic/internal/cache"
	"lbic/internal/isa"
	"lbic/internal/metrics"
	"lbic/internal/ports"
	"lbic/internal/trace"
)

// entry state machine. Memory operations follow:
//
//	load:  waiting → ready → issued(AGU) → [order-parked | fwd-parked |
//	       mem-pending → mem-wait] → done
//	store: waiting → ready → issued(AGU) → wait-data → done → (commit:
//	       store buffer) → written
type state uint8

const (
	stEmpty state = iota
	stWaiting
	stReady
	stIssued
	stOrderParked // load: an older store's address is unknown
	stFwdParked   // load: waiting on a matching, unready store
	stMemPending  // load: competing for a cache port
	stMemWait     // load: cache access in flight
	stWaitData    // store: address generated, data operand pending
	stDone
)

var stateNames = [...]string{"empty", "waiting", "ready", "issued",
	"order-parked", "fwd-parked", "mem-pending", "mem-wait", "wait-data", "done"}

// String returns the state's diagnostic name.
func (s state) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "state(?)"
}

const (
	evExec    = iota // functional unit completes; result ready
	evAGU            // load/store address generation completes
	evMem            // cache completes a load
	evWrite          // cache completes a committed store's write
	wheelSize = 64   // must exceed every FU and hit latency
)

type event struct {
	kind int32
	idx  int32 // RUU index (evExec/evAGU/evMem) or store buffer slot (evWrite)
}

type entry struct {
	dyn       trace.Dyn
	state     state
	src1Ready bool
	src2Ready bool
	addrDone  bool
	deps      []int32 // packed dependent links: ruuIdx<<2 | operand
}

// fwdRef tracks an in-flight store for store-to-load forwarding, keyed in a
// granule map by 8-byte-aligned address granules the store touches.
type fwdRef struct {
	seq  uint64
	addr uint64
	size uint8
	ruu  int32 // RUU index pre-commit, -1 once the store is committed
}

type storeBufEntry struct {
	seq     uint64
	addr    uint64
	size    uint8
	live    bool
	granted bool
}

type orderRef struct {
	seq uint64
	idx int32
}

// Verifier observes the core's memory pipeline for invariant checking. The
// oracle in internal/oracle implements it; the interface lives here (with
// only ports/trace types in its signatures) so the checker can depend on the
// core without an import cycle. All hooks are called synchronously from
// Step; a violation is latched and surfaced via Err, which the core checks
// at the end of every cycle.
type Verifier interface {
	// ObserveDispatch sees every memory operation entering the window, in
	// program order, with its ground-truth address, size, and value.
	ObserveDispatch(d *trace.Dyn)
	// ObserveGrant sees every arbitration: the ready list handed to the
	// arbiter (possibly empty — stateful arbiters get a Grant call each
	// cycle) and the granted indices.
	ObserveGrant(now uint64, ready []ports.Request, granted []int)
	// ObserveAccess sees every granted request's hierarchy access; blocked
	// reports an MSHR-exhaustion rejection (the request will retry).
	ObserveAccess(now uint64, seq uint64, store, blocked bool)
	// ObserveForward sees a load serviced by store-to-load forwarding from
	// the store with sequence number storeSeq.
	ObserveForward(now uint64, loadSeq, storeSeq uint64)
	// Err returns the first latched invariant violation, or nil.
	Err() error
}

// Core simulates one program run cycle by cycle.
type Core struct {
	cfg    Config
	stream trace.Stream
	hier   *cache.Hierarchy
	arb    ports.Arbiter

	now   uint64
	stats Stats

	// Forward-progress watchdog: watchdog is the no-progress cycle limit
	// (0 = disabled), lastProgress the last cycle that committed an
	// instruction or retired a committed store.
	watchdog     uint64
	lastProgress uint64

	// RUU ring.
	entries []entry
	head    int
	count   int
	nextSeq uint64

	// One-instruction lookahead into the stream.
	peeked    bool
	peekDyn   trace.Dyn
	streamEOF bool

	lastWriter [isa.NumRegs]int32 // RUU index producing each register, -1 if none

	readyQ readyHeap

	wheel [wheelSize][]event

	// LSQ-derived structures.
	lsqCount    int
	storeOrder  []orderRef         // dispatched stores, FIFO; front popped when address known
	orderParked []int32            // loads blocked on unknown older store addresses
	fwdWaiters  map[uint64][]int32 // store seq → loads parked on it
	fwdMap      map[uint64][]fwdRef
	memPending  []int32 // loads ready for a port, ascending seq

	// Committed store buffer (FIFO ring over slots).
	storeBuf  []storeBufEntry
	sbHead    int
	sbCount   int
	storeLive int // live (incl. granted, unwritten) stores

	// Per-cycle FU accounting.
	fuUsed [isa.NumClasses]int      // pipelined issues this cycle
	fuBusy [isa.NumClasses][]uint64 // release times for unpipelined units

	reqBuf   []ports.Request
	reqIdx   []int32 // parallel: RUU index (loads) or -(slot+1) (stores)
	grantBuf []int

	// Observability. The gauges and histogram are live metric objects a
	// run report's registry adopts; events is nil unless a structured
	// event trace was requested.
	grantHist *metrics.Histogram
	ruuOcc    *metrics.Gauge
	lsqOcc    *metrics.Gauge
	sbOcc     *metrics.Gauge
	events    trace.EventSink
	lineShift uint // log2(L1 line size), for event line numbers

	// verify, when non-nil, receives the memory-pipeline observations and
	// enables the per-cycle self-checks (CPI stall stack sums to cycles).
	verify Verifier
}

// New prepares a run of stream against the given memory hierarchy and port
// arbiter.
func New(stream trace.Stream, hier *cache.Hierarchy, arb ports.Arbiter, cfg Config) (*Core, error) {
	if stream == nil {
		return nil, fmt.Errorf("cpu: nil instruction stream")
	}
	if hier == nil {
		return nil, fmt.Errorf("cpu: nil memory hierarchy")
	}
	if arb == nil {
		return nil, fmt.Errorf("cpu: nil port arbiter")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if hier.Params().HitLat >= wheelSize {
		return nil, fmt.Errorf("cpu: hit latency %d exceeds event wheel %d", hier.Params().HitLat, wheelSize)
	}
	c := &Core{
		cfg:        cfg,
		stream:     stream,
		hier:       hier,
		arb:        arb,
		entries:    make([]entry, cfg.RUUSize),
		fwdWaiters: make(map[uint64][]int32),
		fwdMap:     make(map[uint64][]fwdRef),
		storeBuf:   make([]storeBufEntry, cfg.StoreBufferSize),
		grantHist: metrics.NewHistogram("cpu.grants_per_cycle",
			"port grants per cycle (arbiter bandwidth actually used)",
			"grants", arb.PeakWidth()+1),
		ruuOcc:    metrics.NewGauge("cpu.ruu_occupancy", "instructions in the window per cycle"),
		lsqOcc:    metrics.NewGauge("cpu.lsq_occupancy", "memory operations in the LSQ per cycle"),
		sbOcc:     metrics.NewGauge("cpu.storebuf_occupancy", "committed stores awaiting write per cycle"),
		lineShift: uint(hier.Params().L1.LineBits()),
	}
	switch {
	case cfg.WatchdogCycles == 0:
		c.watchdog = DefaultWatchdogCycles
	case cfg.WatchdogCycles > 0:
		c.watchdog = uint64(cfg.WatchdogCycles)
	}
	for r := range c.lastWriter {
		c.lastWriter[r] = -1
	}
	c.readyQ.core = c
	return c, nil
}

// Stats returns a snapshot of the run statistics.
func (c *Core) Stats() Stats {
	s := c.stats
	s.Cycles = c.now
	return s
}

// Now returns the current cycle.
func (c *Core) Now() uint64 { return c.now }

// SetEventSink directs the structured event trace to s (nil disables it).
// Set it before the first Step.
func (c *Core) SetEventSink(s trace.EventSink) { c.events = s }

// SetVerifier attaches an invariant checker (nil disables verification).
// Set it before the first Step; Step fails on the first latched violation.
func (c *Core) SetVerifier(v Verifier) { c.verify = v }

// GrantsPerCycle returns the live per-cycle port-grant histogram.
func (c *Core) GrantsPerCycle() *metrics.Histogram { return c.grantHist }

// OccupancyGauges returns the live per-cycle occupancy gauges: RUU, LSQ,
// and store buffer.
func (c *Core) OccupancyGauges() []*metrics.Gauge {
	return []*metrics.Gauge{c.ruuOcc, c.lsqOcc, c.sbOcc}
}

// Done reports whether the run has fully drained.
func (c *Core) Done() bool {
	return c.fetchExhausted() && c.count == 0 && c.storeLive == 0
}

func (c *Core) fetchExhausted() bool {
	if c.cfg.MaxInsts > 0 && c.stats.Dispatched >= c.cfg.MaxInsts {
		return true
	}
	return c.streamEOF && !c.peeked
}

// Run steps the core until completion and returns the statistics.
func (c *Core) Run() (Stats, error) {
	return c.RunContext(context.Background())
}

// ctxCheckInterval is how often RunContext polls its context, in cycles: a
// per-cycle check would cost an interface call in the hottest loop, and a
// few thousand cycles of cancellation latency is far below human-visible.
const ctxCheckInterval = 4096

// RunContext steps the core until completion, cooperatively honoring ctx:
// cancellation (or deadline expiry) aborts the run within ctxCheckInterval
// cycles with the context's error. This is what makes per-cell deadlines in
// sweep runners effective without killing the process.
func (c *Core) RunContext(ctx context.Context) (Stats, error) {
	countdown := uint64(0)
	for !c.Done() {
		if countdown == 0 {
			if err := ctx.Err(); err != nil {
				return c.Stats(), fmt.Errorf("cpu: run canceled at cycle %d (committed %d of %d dispatched): %w",
					c.now, c.stats.Committed, c.stats.Dispatched, err)
			}
			countdown = ctxCheckInterval
		}
		countdown--
		if err := c.Step(); err != nil {
			return c.Stats(), err
		}
	}
	return c.Stats(), nil
}

// Step advances the simulation by one cycle.
func (c *Core) Step() error {
	if c.cfg.MaxCycles > 0 && c.now >= c.cfg.MaxCycles {
		return fmt.Errorf("cpu: exceeded %d cycles (committed %d of %d dispatched; RUU %d, head state %d)",
			c.cfg.MaxCycles, c.stats.Committed, c.stats.Dispatched, c.count, c.entries[c.head].state)
	}
	commit0 := c.stats.Committed
	sbStall0 := c.stats.CommitStallStoreBuf
	ruuStall0 := c.stats.DispatchStallRUU
	lsqStall0 := c.stats.DispatchStallLSQ
	c.hier.Advance(c.now)
	c.processEvents()
	c.releaseOrderParked()
	c.commit()
	c.memoryIssue()
	c.issue()
	c.dispatch()
	c.drainCompletions()
	c.accountCycle(commit0, sbStall0, ruuStall0, lsqStall0)
	if c.stats.Committed > commit0 {
		c.lastProgress = c.now
	}
	if c.watchdog != 0 && c.now-c.lastProgress >= c.watchdog {
		return c.hangError()
	}
	if c.verify != nil {
		if err := c.verify.Err(); err != nil {
			return fmt.Errorf("cpu: verify failed at cycle %d: %w", c.now, err)
		}
		var sum uint64
		for _, n := range c.stats.StallCycles {
			sum += n
		}
		if sum != c.now+1 {
			return fmt.Errorf("cpu: verify failed at cycle %d: CPI stall buckets sum to %d, want %d",
				c.now, sum, c.now+1)
		}
	}
	c.now++
	return nil
}

// --- events and wakeup ---

func (c *Core) schedule(at uint64, ev event) {
	if at <= c.now {
		at = c.now + 1
	}
	if at-c.now >= wheelSize {
		panic(fmt.Sprintf("cpu: event latency %d exceeds wheel", at-c.now))
	}
	slot := at % wheelSize
	c.wheel[slot] = append(c.wheel[slot], ev)
}

func (c *Core) processEvents() {
	slot := c.now % wheelSize
	evs := c.wheel[slot]
	c.wheel[slot] = evs[:0]
	// The slice is reused immediately; iterate over a stable copy by index,
	// but new events always target future slots, so in-place iteration is
	// safe as long as we re-read length (appends to this slot are imposs.).
	for i := 0; i < len(evs); i++ {
		ev := evs[i]
		switch ev.kind {
		case evExec:
			c.complete(ev.idx)
		case evAGU:
			c.addrGenerated(ev.idx)
		case evMem:
			c.complete(ev.idx)
		case evWrite:
			c.storeWritten(int(ev.idx))
		}
	}
}

// complete marks an instruction's result ready and wakes dependents.
func (c *Core) complete(idx int32) {
	e := &c.entries[idx]
	e.state = stDone
	deps := e.deps
	e.deps = e.deps[:0]
	for _, d := range deps {
		c.wake(d>>2, int(d&3))
	}
}

func (c *Core) wake(idx int32, operand int) {
	e := &c.entries[idx]
	if operand == 1 {
		e.src1Ready = true
	} else {
		e.src2Ready = true
	}
	switch {
	case e.dyn.IsStore():
		if operand == 1 && e.state == stWaiting {
			c.pushReady(idx)
		} else if operand == 2 && e.state == stWaitData {
			c.storeDone(idx)
		}
	case e.state == stWaiting && e.src1Ready && e.src2Ready:
		c.pushReady(idx)
	}
}

func (c *Core) pushReady(idx int32) {
	c.entries[idx].state = stReady
	c.readyQ.push(idx)
}

// --- stores: address generation, completion, forwarding bookkeeping ---

// addrGenerated handles AGU completion for loads and stores.
func (c *Core) addrGenerated(idx int32) {
	e := &c.entries[idx]
	e.addrDone = true
	if e.dyn.IsStore() {
		c.registerForward(e.dyn.Seq, e.dyn.Addr, e.dyn.Size, idx)
		if e.src2Ready {
			c.storeDone(idx)
		} else {
			e.state = stWaitData
		}
		return
	}
	c.routeLoad(idx)
}

// storeDone marks a store complete (address and data ready): it becomes
// committable and can now satisfy forwarding loads parked on it.
func (c *Core) storeDone(idx int32) {
	e := &c.entries[idx]
	e.state = stDone
	c.recheckFwdWaiters(e.dyn.Seq)
}

func granules(addr uint64, size uint8) (uint64, uint64) {
	return addr >> 3, (addr + uint64(size) - 1) >> 3
}

func (c *Core) registerForward(seq, addr uint64, size uint8, ruu int32) {
	g0, g1 := granules(addr, size)
	ref := fwdRef{seq: seq, addr: addr, size: size, ruu: ruu}
	c.fwdMap[g0] = append(c.fwdMap[g0], ref)
	if g1 != g0 {
		c.fwdMap[g1] = append(c.fwdMap[g1], ref)
	}
}

func (c *Core) dropForward(seq, addr uint64, size uint8) {
	g0, g1 := granules(addr, size)
	c.dropForwardGranule(g0, seq)
	if g1 != g0 {
		c.dropForwardGranule(g1, seq)
	}
}

func (c *Core) dropForwardGranule(g, seq uint64) {
	refs := c.fwdMap[g]
	for i := range refs {
		if refs[i].seq == seq {
			refs[i] = refs[len(refs)-1]
			refs = refs[:len(refs)-1]
			break
		}
	}
	if len(refs) == 0 {
		delete(c.fwdMap, g)
	} else {
		c.fwdMap[g] = refs
	}
}

// commitForward re-tags a store's forwarding refs as committed (always data
// ready, no RUU entry).
func (c *Core) commitForward(seq, addr uint64, size uint8) {
	g0, g1 := granules(addr, size)
	c.commitForwardGranule(g0, seq)
	if g1 != g0 {
		c.commitForwardGranule(g1, seq)
	}
}

func (c *Core) commitForwardGranule(g, seq uint64) {
	refs := c.fwdMap[g]
	for i := range refs {
		if refs[i].seq == seq {
			refs[i].ruu = -1
		}
	}
}

func (c *Core) recheckFwdWaiters(storeSeq uint64) {
	waiters := c.fwdWaiters[storeSeq]
	if len(waiters) == 0 {
		return
	}
	delete(c.fwdWaiters, storeSeq)
	for _, idx := range waiters {
		c.routeLoad(idx)
	}
}

// --- loads: ordering, forwarding, port scheduling ---

// minUnknownStoreSeq returns the sequence number of the oldest store whose
// address is not yet generated, or MaxUint64 if all are known.
func (c *Core) minUnknownStoreSeq() uint64 {
	for len(c.storeOrder) > 0 {
		ref := c.storeOrder[0]
		e := &c.entries[ref.idx]
		if e.dyn.Seq == ref.seq && !e.addrDone {
			return ref.seq
		}
		c.storeOrder = c.storeOrder[1:]
	}
	return math.MaxUint64
}

// routeLoad decides what happens to a load whose address is generated:
// park on ordering, forward, park on a store, or queue for a cache port.
func (c *Core) routeLoad(idx int32) {
	e := &c.entries[idx]
	if c.minUnknownStoreSeq() < e.dyn.Seq {
		e.state = stOrderParked
		c.orderParked = append(c.orderParked, idx)
		c.stats.OrderingStalls++
		return
	}
	switch blockSeq, disp := c.tryForward(idx); disp {
	case fwdServiced:
		c.stats.Forwards++
		if c.verify != nil {
			c.verify.ObserveForward(c.now, e.dyn.Seq, blockSeq)
		}
		c.schedule(c.now+1, event{kind: evMem, idx: idx})
		e.state = stMemWait
		return
	case fwdBlocked:
		e.state = stFwdParked
		c.fwdWaiters[blockSeq] = append(c.fwdWaiters[blockSeq], idx)
		c.stats.ForwardWaits++
		return
	}
	e.state = stMemPending
	c.insertMemPending(idx)
}

// fwdDisposition is the result of a forwarding lookup.
type fwdDisposition uint8

const (
	// fwdNone: no overlapping older store; the load goes to the cache.
	fwdNone fwdDisposition = iota
	// fwdServiced: a ready covering store services the load at zero latency.
	fwdServiced
	// fwdBlocked: the load must wait on the returned store sequence number
	// (unready data, or a partial overlap that cannot forward).
	fwdBlocked
)

// tryForward finds the youngest older store overlapping the load and decides
// the load's disposition; for fwdServiced and fwdBlocked the returned
// sequence number identifies that store.
func (c *Core) tryForward(idx int32) (uint64, fwdDisposition) {
	e := &c.entries[idx]
	addr, size, seq := e.dyn.Addr, e.dyn.Size, e.dyn.Seq
	g0, g1 := granules(addr, size)
	best := fwdRef{}
	found := false
	scan := func(g uint64) {
		for _, ref := range c.fwdMap[g] {
			if ref.seq >= seq {
				continue
			}
			if ref.addr >= addr+uint64(size) || addr >= ref.addr+uint64(ref.size) {
				continue // no overlap
			}
			if !found || ref.seq > best.seq {
				best, found = ref, true
			}
		}
	}
	scan(g0)
	if g1 != g0 {
		scan(g1)
	}
	if !found {
		return 0, fwdNone
	}
	covers := best.addr <= addr && best.addr+uint64(best.size) >= addr+uint64(size)
	ready := best.ruu < 0 || c.entries[best.ruu].state == stDone
	if covers && ready {
		return best.seq, fwdServiced
	}
	// Partial overlap, or the matching store's data is not ready: wait on it.
	return best.seq, fwdBlocked
}

func (c *Core) insertMemPending(idx int32) {
	seq := c.entries[idx].dyn.Seq
	i := sort.Search(len(c.memPending), func(i int) bool {
		return c.entries[c.memPending[i]].dyn.Seq > seq
	})
	c.memPending = append(c.memPending, 0)
	copy(c.memPending[i+1:], c.memPending[i:])
	c.memPending[i] = idx
}

func (c *Core) removeMemPending(idx int32) {
	seq := c.entries[idx].dyn.Seq
	i := sort.Search(len(c.memPending), func(i int) bool {
		return c.entries[c.memPending[i]].dyn.Seq >= seq
	})
	if i < len(c.memPending) && c.memPending[i] == idx {
		c.memPending = append(c.memPending[:i], c.memPending[i+1:]...)
	}
}

// releaseOrderParked re-routes loads whose ordering barrier has cleared.
func (c *Core) releaseOrderParked() {
	if len(c.orderParked) == 0 {
		return
	}
	min := c.minUnknownStoreSeq()
	kept := c.orderParked[:0]
	var release []int32
	for _, idx := range c.orderParked {
		if c.entries[idx].dyn.Seq < min {
			release = append(release, idx)
		} else {
			kept = append(kept, idx)
		}
	}
	c.orderParked = kept
	for _, idx := range release {
		c.routeLoad(idx)
	}
}

// --- commit ---

func (c *Core) commit() {
	for n := 0; n < c.cfg.CommitWidth && c.count > 0; n++ {
		idx := int32(c.head)
		e := &c.entries[idx]
		if e.state != stDone {
			return
		}
		if e.dyn.IsStore() {
			if c.sbCount == c.cfg.StoreBufferSize {
				c.stats.CommitStallStoreBuf++
				return
			}
			slot := (c.sbHead + c.sbCount) % c.cfg.StoreBufferSize
			c.storeBuf[slot] = storeBufEntry{seq: e.dyn.Seq, addr: e.dyn.Addr, size: e.dyn.Size, live: true}
			c.sbCount++
			c.storeLive++
			c.commitForward(e.dyn.Seq, e.dyn.Addr, e.dyn.Size)
			c.stats.Stores++
			c.lsqCount--
		} else if e.dyn.IsLoad() {
			c.stats.Loads++
			c.lsqCount--
		}
		if d := e.dyn.Dst; d != isa.RegNone && c.lastWriter[d] == idx {
			c.lastWriter[d] = -1
		}
		e.state = stEmpty
		e.deps = e.deps[:0]
		c.head = (c.head + 1) % c.cfg.RUUSize
		c.count--
		c.stats.Committed++
	}
}

// --- memory port arbitration ---

func (c *Core) memoryIssue() {
	c.reqBuf = c.reqBuf[:0]
	c.reqIdx = c.reqIdx[:0]
	// Committed stores first: they are the oldest memory operations.
	for i := 0; i < c.sbCount && len(c.reqBuf) < c.cfg.MemScanDepth; i++ {
		slot := (c.sbHead + i) % c.cfg.StoreBufferSize
		sb := &c.storeBuf[slot]
		if !sb.live || sb.granted {
			continue
		}
		c.reqBuf = append(c.reqBuf, ports.Request{Seq: sb.seq, Addr: sb.addr, Store: true})
		c.reqIdx = append(c.reqIdx, -int32(slot)-1)
	}
	for _, idx := range c.memPending {
		if len(c.reqBuf) >= c.cfg.MemScanDepth {
			break
		}
		e := &c.entries[idx]
		c.reqBuf = append(c.reqBuf, ports.Request{Seq: e.dyn.Seq, Addr: e.dyn.Addr, Store: false})
		c.reqIdx = append(c.reqIdx, idx)
	}
	if len(c.reqBuf) == 0 {
		// Still give stateful arbiters (LBIC store-queue drain) their cycle.
		c.grantBuf = c.arb.Grant(c.now, nil, c.grantBuf[:0])
		if c.verify != nil {
			c.verify.ObserveGrant(c.now, nil, c.grantBuf)
		}
		c.grantHist.Observe(0)
		return
	}
	c.grantBuf = c.arb.Grant(c.now, c.reqBuf, c.grantBuf[:0])
	if c.verify != nil {
		c.verify.ObserveGrant(c.now, c.reqBuf, c.grantBuf)
	}
	c.grantHist.Observe(len(c.grantBuf))
	for _, g := range c.grantBuf {
		r := c.reqBuf[g]
		id := c.reqIdx[g]
		c.stats.PortGrants++
		var token int64
		if r.Store {
			token = int64(c.cfg.RUUSize) + int64(-id-1)
		} else {
			token = int64(id)
		}
		out := c.hier.Access(c.now, r.Addr, r.Store, token)
		if c.verify != nil {
			c.verify.ObserveAccess(c.now, r.Seq, r.Store, out == cache.Blocked)
		}
		if c.events != nil {
			kind := trace.EvAccess
			if r.Store {
				kind = trace.EvWrite
			}
			c.events.Emit(trace.Event{Cycle: c.now, Kind: kind, Seq: int64(r.Seq),
				Bank: -1, Line: r.Addr >> c.lineShift, Cause: out.String()})
		}
		switch out {
		case cache.Blocked:
			c.stats.PortBlocked++
		default:
			if r.Store {
				slot := int(-id - 1)
				sb := &c.storeBuf[slot]
				sb.granted = true
				c.dropForward(sb.seq, sb.addr, sb.size)
				c.recheckFwdWaiters(sb.seq)
			} else {
				c.removeMemPending(id)
				c.entries[id].state = stMemWait
			}
		}
	}
}

// storeWritten retires a written store from the buffer.
func (c *Core) storeWritten(slot int) {
	c.storeBuf[slot].live = false
	c.storeLive--
	c.lastProgress = c.now
	for c.sbCount > 0 {
		head := &c.storeBuf[c.sbHead]
		if head.live {
			break
		}
		c.sbHead = (c.sbHead + 1) % c.cfg.StoreBufferSize
		c.sbCount--
	}
}

// drainCompletions converts hierarchy completions into wheel events.
func (c *Core) drainCompletions() {
	for _, comp := range c.hier.Drain() {
		if comp.Token >= int64(c.cfg.RUUSize) {
			c.schedule(comp.At, event{kind: evWrite, idx: int32(comp.Token - int64(c.cfg.RUUSize))})
		} else {
			c.schedule(comp.At, event{kind: evMem, idx: int32(comp.Token)})
		}
	}
}

// --- issue ---

func (c *Core) fuAvailable(cl isa.Class) bool {
	lat := isa.LatencyOf(cl)
	n := c.cfg.FUCount[cl]
	if lat.Issue <= 1 {
		return c.fuUsed[cl] < n
	}
	busy := c.fuBusy[cl]
	live := busy[:0]
	for _, rel := range busy {
		if rel > c.now {
			live = append(live, rel)
		}
	}
	c.fuBusy[cl] = live
	return len(live) < n
}

func (c *Core) fuOccupy(cl isa.Class) {
	lat := isa.LatencyOf(cl)
	if lat.Issue <= 1 {
		c.fuUsed[cl]++
		return
	}
	c.fuBusy[cl] = append(c.fuBusy[cl], c.now+uint64(lat.Issue))
}

func (c *Core) issue() {
	for cl := range c.fuUsed {
		c.fuUsed[cl] = 0
	}
	budget := c.cfg.IssueWidth
	attempts := c.readyQ.Len()
	var sidelined []int32
	for budget > 0 && attempts > 0 && c.readyQ.Len() > 0 {
		attempts--
		idx := c.readyQ.pop()
		e := &c.entries[idx]
		cl := e.dyn.Class
		if !c.fuAvailable(cl) {
			sidelined = append(sidelined, idx)
			continue
		}
		c.fuOccupy(cl)
		budget--
		c.stats.Issued++
		c.stats.IssuedByClass[cl]++
		e.state = stIssued
		if e.dyn.IsMem() {
			c.schedule(c.now+uint64(isa.LatencyOf(cl).Total), event{kind: evAGU, idx: idx})
		} else {
			c.schedule(c.now+uint64(isa.LatencyOf(cl).Total), event{kind: evExec, idx: idx})
		}
	}
	for _, idx := range sidelined {
		c.entries[idx].state = stReady
		c.readyQ.push(idx)
	}
}

// --- dispatch ---

func (c *Core) peek() (trace.Dyn, bool) {
	if c.peeked {
		return c.peekDyn, true
	}
	if c.streamEOF {
		return trace.Dyn{}, false
	}
	if !c.stream.Next(&c.peekDyn) {
		c.streamEOF = true
		return trace.Dyn{}, false
	}
	c.peeked = true
	return c.peekDyn, true
}

func (c *Core) dispatch() {
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.cfg.MaxInsts > 0 && c.stats.Dispatched >= c.cfg.MaxInsts {
			return
		}
		if c.count == c.cfg.RUUSize {
			c.stats.DispatchStallRUU++
			return
		}
		dyn, ok := c.peek()
		if !ok {
			return
		}
		if dyn.IsMem() && c.lsqCount == c.cfg.LSQSize {
			c.stats.DispatchStallLSQ++
			return
		}
		c.peeked = false
		idx := int32((c.head + c.count) % c.cfg.RUUSize)
		c.count++
		c.stats.Dispatched++

		e := &c.entries[idx]
		*e = entry{dyn: dyn, deps: e.deps[:0]}
		e.dyn.Seq = c.nextSeq
		c.nextSeq++
		if c.verify != nil && e.dyn.IsMem() {
			c.verify.ObserveDispatch(&e.dyn)
		}
		e.src1Ready = c.wireSource(e.dyn.Src1, idx, 1)
		e.src2Ready = c.wireSource(e.dyn.Src2, idx, 2)

		switch {
		case e.dyn.Class == isa.ClassNone:
			e.state = stDone
		case e.dyn.IsStore():
			c.lsqCount++
			c.storeOrder = append(c.storeOrder, orderRef{seq: e.dyn.Seq, idx: idx})
			if e.src1Ready {
				c.pushReady(idx)
			} else {
				e.state = stWaiting
			}
		case e.dyn.IsLoad():
			c.lsqCount++
			fallthrough
		default:
			if e.src1Ready && e.src2Ready {
				c.pushReady(idx)
			} else {
				e.state = stWaiting
			}
		}
		if d := e.dyn.Dst; d != isa.RegNone {
			c.lastWriter[d] = idx
		}
	}
}

// wireSource links a source operand to its producer, reporting whether the
// operand is already available.
func (c *Core) wireSource(r isa.Reg, idx int32, operand int) bool {
	if r == isa.RegNone {
		return true
	}
	p := c.lastWriter[r]
	if p < 0 {
		return true
	}
	prod := &c.entries[p]
	if prod.state == stDone {
		return true
	}
	prod.deps = append(prod.deps, idx<<2|int32(operand))
	return false
}

// --- ready queue (hand-rolled min-heap by sequence number) ---
//
// container/heap would box every int32 through an interface on each
// push/pop; issue is the hottest stage, so the sift loops are inlined here.

type readyHeap struct {
	core *Core
	ids  []int32
}

// Len returns the number of ready instructions.
func (h *readyHeap) Len() int { return len(h.ids) }

func (h *readyHeap) less(i, j int) bool {
	return h.core.entries[h.ids[i]].dyn.Seq < h.core.entries[h.ids[j]].dyn.Seq
}

func (h *readyHeap) push(v int32) {
	h.ids = append(h.ids, v)
	i := len(h.ids) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ids[i], h.ids[parent] = h.ids[parent], h.ids[i]
		i = parent
	}
}

func (h *readyHeap) pop() int32 {
	top := h.ids[0]
	last := len(h.ids) - 1
	h.ids[0] = h.ids[last]
	h.ids = h.ids[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.less(l, smallest) {
			smallest = l
		}
		if r < last && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.ids[i], h.ids[smallest] = h.ids[smallest], h.ids[i]
		i = smallest
	}
	return top
}
