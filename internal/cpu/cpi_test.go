package cpu

import (
	"strings"
	"testing"

	"lbic/internal/cache"
	"lbic/internal/isa"
	"lbic/internal/ports"
	"lbic/internal/trace"
)

// mixedStream builds a stream exercising every stall source: dependent ALU
// chains, load bursts to conflicting addresses, and store bursts.
func mixedStream(n int) []trace.Dyn {
	dyns := make([]trace.Dyn, 0, n)
	for i := 0; len(dyns) < n; i++ {
		addr := uint64(i%512) * 8
		switch i % 5 {
		case 0:
			dyns = append(dyns, load(r(1+i%8), r(20), addr))
		case 1:
			dyns = append(dyns, alu(r(9), r(1+i%8), r(10)))
		case 2:
			dyns = append(dyns, store(r(9), r(20), addr+64))
		case 3:
			// Far address: periodic misses keep the MSHRs busy.
			dyns = append(dyns, load(r(11), r(21), uint64(i)*4096))
		default:
			dyns = append(dyns, alu(r(12), r(11), r(9)))
		}
	}
	return dyns[:n]
}

func sumStalls(s Stats) uint64 {
	var total uint64
	for _, v := range s.StallCycles {
		total += v
	}
	return total
}

func TestCPIStackSumsToCycles(t *testing.T) {
	dyns := mixedStream(4000)
	arbs := map[string]func() (ports.Arbiter, error){
		"ideal-1": func() (ports.Arbiter, error) { return ports.NewIdeal(1) },
		"bank-2":  func() (ports.Arbiter, error) { return ports.NewBanked(2, 32) },
		"lbic-2x2": func() (ports.Arbiter, error) {
			return corelbic(2, 2)
		},
	}
	for name, mk := range arbs {
		t.Run(name, func(t *testing.T) {
			arb, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			s := runStream(t, dyns, arb, func(c *Config) {
				// A small window and store buffer provoke the structural
				// stall buckets too.
				c.RUUSize = 16
				c.LSQSize = 8
				c.StoreBufferSize = 2
			})
			if s.Cycles == 0 {
				t.Fatal("no cycles simulated")
			}
			if got := sumStalls(s); got != s.Cycles {
				t.Errorf("stall stack sums to %d, want Cycles = %d (stack %v)",
					got, s.Cycles, s.StallCycles)
			}
			if s.StallCycles[StallCommitting] == 0 {
				t.Error("no cycles attributed to committing")
			}
		})
	}
}

func TestCPIStackStallBuckets(t *testing.T) {
	// Serial dependent loads through one port: the head must spend cycles
	// waiting on misses, and those cycles must land in the mem buckets.
	dyns := make([]trace.Dyn, 400)
	for i := range dyns {
		dyns[i] = load(r(1), r(1), uint64(i)*4096)
	}
	s := runStream(t, dyns, ideal(t, 1), nil)
	if got := sumStalls(s); got != s.Cycles {
		t.Fatalf("stall stack sums to %d, want %d", got, s.Cycles)
	}
	if s.StallCycles[StallMemWait] == 0 {
		t.Errorf("pointer-chase of misses attributed no cycles to %s (stack %v)",
			StallMemWait, s.StallCycles)
	}
}

func TestGrantsHistogramCountsEveryCycle(t *testing.T) {
	hier, err := cache.NewHierarchy(cache.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 100_000
	c, err := New(trace.NewSliceStream(mixedStream(2000)), hier, ideal(t, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	h := c.GrantsPerCycle()
	if h.Count() != s.Cycles {
		t.Errorf("grants histogram has %d samples, want one per cycle = %d",
			h.Count(), s.Cycles)
	}
	if h.Sum() != s.PortGrants {
		t.Errorf("grants histogram sums to %d, want PortGrants = %d", h.Sum(), s.PortGrants)
	}
	// Occupancy samples at commit boundaries (which keeps the gauges exact
	// under idle-cycle fast-forward), so one sample per committing cycle.
	for _, g := range c.OccupancyGauges() {
		if g.Samples() != s.StallCycles[StallCommitting] {
			t.Errorf("gauge %q has %d samples, want one per commit cycle = %d",
				g.Name, g.Samples(), s.StallCycles[StallCommitting])
		}
	}
}

func TestTraceRunSkippedHeaderSuppressed(t *testing.T) {
	hier, err := cache.NewHierarchy(cache.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 100_000
	c, err := New(trace.NewSliceStream(mixedStream(200)), hier, ideal(t, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	st, err := TraceRun(c, &buf, TraceOptions{SkipCycles: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "stbuf") {
		t.Errorf("header printed although every cycle was skipped:\n%s", out)
	}
	if !strings.Contains(out, "instructions") {
		t.Errorf("final summary missing:\n%s", out)
	}
	if st.Committed != 200 {
		t.Errorf("committed = %d, want 200", st.Committed)
	}
}

func TestStallCauseNames(t *testing.T) {
	names := StallCauseNames()
	if len(names) != NumStallCauses {
		t.Fatalf("got %d names, want %d", len(names), NumStallCauses)
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" || strings.Contains(n, "stall(") {
			t.Errorf("cause %d has bad name %q", i, n)
		}
		if seen[n] {
			t.Errorf("duplicate cause name %q", n)
		}
		seen[n] = true
	}
	if StallCause(NumStallCauses).String() == names[0] {
		t.Error("out-of-range cause collides with a real name")
	}
}

var _ = isa.ClassLoad // keep the import when helpers change
