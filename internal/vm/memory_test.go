package vm

import (
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := NewMemory()
	cases := []struct {
		addr uint64
		size int
		v    uint64
	}{
		{0x10000, 1, 0xab},
		{0x10001, 2, 0xbeef},
		{0x10010, 4, 0xdeadbeef},
		{0x10020, 8, 0x1122334455667788},
	}
	for _, c := range cases {
		m.Write(c.addr, c.size, c.v)
		if got := m.Read(c.addr, c.size); got != c.v {
			t.Errorf("Read(%#x,%d) = %#x, want %#x", c.addr, c.size, got, c.v)
		}
	}
}

func TestUntouchedMemoryReadsZero(t *testing.T) {
	m := NewMemory()
	if got := m.Read(0x500000, 8); got != 0 {
		t.Errorf("untouched read = %#x, want 0", got)
	}
}

func TestPageStraddlingAccess(t *testing.T) {
	m := NewMemory()
	addr := uint64(2*PageSize - 3) // 3 bytes in one page, 5 in the next
	v := uint64(0x0102030405060708)
	m.Write(addr, 8, v)
	if got := m.Read(addr, 8); got != v {
		t.Errorf("straddling read = %#x, want %#x", got, v)
	}
	// Byte-level check across the boundary.
	if m.LoadByte(addr) != 0x08 {
		t.Error("first byte wrong")
	}
	if m.LoadByte(addr+7) != 0x01 {
		t.Error("last byte wrong")
	}
}

func TestGuardRegionFaults(t *testing.T) {
	m := NewMemory()
	defer func() {
		f, ok := recover().(*Fault)
		if !ok {
			t.Fatal("expected *Fault panic")
		}
		if f.Addr != 0x10 {
			t.Errorf("fault addr = %#x", f.Addr)
		}
		if f.Error() == "" {
			t.Error("fault must describe itself")
		}
	}()
	m.Read(0x10, 4)
}

func TestWraparoundFaults(t *testing.T) {
	m := NewMemory()
	defer func() {
		if _, ok := recover().(*Fault); !ok {
			t.Fatal("expected *Fault panic")
		}
	}()
	m.Write(^uint64(0)-2, 8, 1)
}

func TestCopyAcrossPages(t *testing.T) {
	m := NewMemory()
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	base := uint64(0x10000) + PageSize/2
	m.Copy(base, data)
	for _, off := range []int{0, 1, PageSize, 2*PageSize + 100, len(data) - 1} {
		if got := m.LoadByte(base + uint64(off)); got != data[off] {
			t.Fatalf("byte %d = %#x, want %#x", off, got, data[off])
		}
	}
}

func TestPagesAndFootprint(t *testing.T) {
	m := NewMemory()
	m.StoreByte(0x10000, 1)
	m.StoreByte(0x10000+PageSize, 1)
	m.StoreByte(0x10000, 2) // same page again
	if m.Pages() != 2 {
		t.Errorf("Pages() = %d, want 2", m.Pages())
	}
	fp := m.Footprint()
	if len(fp) != 2 || fp[0] != 0x10000>>PageBits || fp[1] != (0x10000+PageSize)>>PageBits {
		t.Errorf("Footprint() = %v", fp)
	}
}

func TestHotPageCacheCoherent(t *testing.T) {
	m := NewMemory()
	m.Write(0x10000, 8, 1) // page A becomes hot
	m.Write(0x90000, 8, 2) // page B becomes hot
	if m.Read(0x10000, 8) != 1 {
		t.Error("page A lost its value after hot-page switch")
	}
	if m.Read(0x90000, 8) != 2 {
		t.Error("page B lost its value")
	}
}

// Writing then reading any (addr, size, value) pair round-trips the value's
// low bytes, for all supported sizes.
func TestReadWriteQuick(t *testing.T) {
	m := NewMemory()
	f := func(addrRaw uint64, sizeSel uint8, v uint64) bool {
		addr := GuardLimit + addrRaw%(1<<30)
		size := []int{1, 2, 4, 8}[sizeSel%4]
		m.Write(addr, size, v)
		mask := ^uint64(0)
		if size < 8 {
			mask = (1 << (8 * size)) - 1
		}
		return m.Read(addr, size) == v&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Two non-overlapping writes do not disturb each other.
func TestWriteIsolationQuick(t *testing.T) {
	f := func(aRaw, bRaw uint64, va, vb uint64) bool {
		m := NewMemory()
		a := GuardLimit + (aRaw%(1<<26))*16
		b := GuardLimit + (bRaw%(1<<26))*16
		if a == b {
			return true
		}
		m.Write(a, 8, va)
		m.Write(b, 8, vb)
		return m.Read(a, 8) == va && m.Read(b, 8) == vb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
