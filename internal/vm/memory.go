// Package vm provides the sparse, paged, byte-addressable memory image used
// by the functional emulator. Pages are allocated on first touch; reads of
// untouched memory return zero. A small guard region at the bottom of the
// address space faults, so null-pointer bugs in workload kernels surface
// immediately instead of silently reading zeroes.
package vm

import (
	"encoding/binary"
	"fmt"
	"sort"
)

const (
	// PageBits is log2 of the page size.
	PageBits = 12
	// PageSize is the allocation granule in bytes.
	PageSize = 1 << PageBits
	pageMask = PageSize - 1

	// GuardLimit is the top of the faulting guard region: accesses below it
	// panic with a Fault.
	GuardLimit = 0x1000
)

// Fault describes an invalid memory access.
type Fault struct {
	Addr uint64
	Size int
	Why  string
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("vm: fault accessing %d bytes at %#x: %s", f.Size, f.Addr, f.Why)
}

// Memory is a sparse paged memory image. It is not safe for concurrent use.
type Memory struct {
	pages map[uint64]*[PageSize]byte
	// hot is a one-entry translation cache; workload loops hammer one or two
	// pages and this avoids most map lookups.
	hotPage uint64
	hotBuf  *[PageSize]byte
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[PageSize]byte), hotPage: ^uint64(0)}
}

func (m *Memory) page(pn uint64) *[PageSize]byte {
	if pn == m.hotPage {
		return m.hotBuf
	}
	p := m.pages[pn]
	if p == nil {
		p = new([PageSize]byte)
		m.pages[pn] = p
	}
	m.hotPage, m.hotBuf = pn, p
	return p
}

func (m *Memory) check(addr uint64, size int) {
	if addr < GuardLimit {
		panic(&Fault{Addr: addr, Size: size, Why: "guard region"})
	}
	if addr+uint64(size) < addr {
		panic(&Fault{Addr: addr, Size: size, Why: "address wraparound"})
	}
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr uint64) byte {
	m.check(addr, 1)
	return m.page(addr >> PageBits)[addr&pageMask]
}

// StoreByte stores v at addr.
func (m *Memory) StoreByte(addr uint64, v byte) {
	m.check(addr, 1)
	m.page(addr >> PageBits)[addr&pageMask] = v
}

// Read returns size bytes at addr as a little-endian unsigned value.
// Size must be 1, 2, 4 or 8.
func (m *Memory) Read(addr uint64, size int) uint64 {
	m.check(addr, size)
	off := addr & pageMask
	if off+uint64(size) <= PageSize {
		buf := m.page(addr >> PageBits)[off:]
		switch size {
		case 1:
			return uint64(buf[0])
		case 2:
			return uint64(binary.LittleEndian.Uint16(buf))
		case 4:
			return uint64(binary.LittleEndian.Uint32(buf))
		case 8:
			return binary.LittleEndian.Uint64(buf)
		}
		panic(&Fault{Addr: addr, Size: size, Why: "unsupported access size"})
	}
	// Page-straddling access: assemble byte by byte.
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.LoadByte(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores the low size bytes of v at addr, little-endian.
// Size must be 1, 2, 4 or 8.
func (m *Memory) Write(addr uint64, size int, v uint64) {
	m.check(addr, size)
	off := addr & pageMask
	if off+uint64(size) <= PageSize {
		buf := m.page(addr >> PageBits)[off:]
		switch size {
		case 1:
			buf[0] = byte(v)
		case 2:
			binary.LittleEndian.PutUint16(buf, uint16(v))
		case 4:
			binary.LittleEndian.PutUint32(buf, uint32(v))
		case 8:
			binary.LittleEndian.PutUint64(buf, v)
		default:
			panic(&Fault{Addr: addr, Size: size, Why: "unsupported access size"})
		}
		return
	}
	for i := 0; i < size; i++ {
		m.StoreByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// Copy initializes a run of bytes starting at addr.
func (m *Memory) Copy(addr uint64, data []byte) {
	if len(data) == 0 {
		return
	}
	m.check(addr, len(data))
	for len(data) > 0 {
		off := addr & pageMask
		n := copy(m.page(addr >> PageBits)[off:], data)
		addr += uint64(n)
		data = data[n:]
	}
}

// Pages returns the number of allocated pages.
func (m *Memory) Pages() int { return len(m.pages) }

// Footprint returns the allocated page numbers in ascending order; tests use
// it to verify working-set sizes.
func (m *Memory) Footprint() []uint64 {
	pns := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	return pns
}
