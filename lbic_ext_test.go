package lbic_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"lbic"
)

func TestPatternsFacade(t *testing.T) {
	pats := lbic.Patterns()
	if len(pats) == 0 {
		t.Fatal("no patterns")
	}
	prog, err := lbic.BuildPattern("same-line-burst")
	if err != nil {
		t.Fatal(err)
	}
	cfg := lbic.DefaultConfig()
	cfg.Port = lbic.LBICPort(4, 4)
	cfg.MaxInsts = 60_000
	res, err := lbic.Simulate(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bank := cfg
	bank.Port = lbic.BankedPort(4)
	resBank, err := lbic.Simulate(prog, bank)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC < 1.5*resBank.IPC {
		t.Errorf("combining on same-line bursts: lbic %.2f vs bank %.2f, want >= 1.5x", res.IPC, resBank.IPC)
	}
	if _, err := lbic.BuildPattern("nonesuch"); err == nil {
		t.Error("unknown pattern should error")
	}
}

func TestBankStridePatternDefeatsBitSelection(t *testing.T) {
	prog, err := lbic.BuildPattern("bank-stride")
	if err != nil {
		t.Fatal(err)
	}
	run := func(port lbic.PortConfig) float64 {
		cfg := lbic.DefaultConfig()
		cfg.Port = port
		cfg.MaxInsts = 60_000
		res, err := lbic.Simulate(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC
	}
	bit := run(lbic.BankedPort(4))
	xor := func() float64 {
		p := lbic.BankedPort(4)
		p.Selector = lbic.XorFold
		return run(p)
	}()
	one := run(lbic.IdealPort(1))
	if bit > 1.2*one {
		t.Errorf("bank-stride under bit selection %.2f should collapse near single-port %.2f", bit, one)
	}
	if xor < 2*bit {
		t.Errorf("xor-fold %.2f should recover the pathological stride (bit %.2f)", xor, bit)
	}
}

func TestCustomPort(t *testing.T) {
	// A trivial custom arbiter: grant only the oldest request per cycle.
	factory := func(lineSize int) (lbic.Arbiter, error) {
		return oldestOnly{}, nil
	}
	prog, err := lbic.BuildBenchmark("li")
	if err != nil {
		t.Fatal(err)
	}
	cfg := lbic.DefaultConfig()
	cfg.Port = lbic.CustomPort("oldest-only", factory)
	cfg.MaxInsts = 40_000
	if cfg.Port.Name() != "custom-oldest-only" {
		t.Errorf("Name() = %q", cfg.Port.Name())
	}
	res, err := lbic.Simulate(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Oldest-only behaves like a single ideal port.
	one := cfg
	one.Port = lbic.IdealPort(1)
	resOne, err := lbic.Simulate(prog, one)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != resOne.Cycles {
		t.Errorf("oldest-only custom arbiter %d cycles != true-1 %d", res.Cycles, resOne.Cycles)
	}
}

type oldestOnly struct{}

func (oldestOnly) Name() string   { return "oldest-only" }
func (oldestOnly) PeakWidth() int { return 1 }
func (oldestOnly) Grant(_ uint64, ready []lbic.Request, dst []int) []int {
	if len(ready) == 0 {
		return dst
	}
	return append(dst, 0)
}

func TestVirtualPortFacade(t *testing.T) {
	a := simulate(t, "li", lbic.VirtualPort(2))
	b := simulate(t, "li", lbic.IdealPort(2))
	if a.Cycles != b.Cycles {
		t.Errorf("virt-2 %d cycles != true-2 %d cycles", a.Cycles, b.Cycles)
	}
}

func TestGreedyPortFacade(t *testing.T) {
	p := lbic.LBICPort(4, 2)
	p.Greedy = true
	res := simulate(t, "gcc", p)
	if res.LBIC == nil {
		t.Fatal("missing LBIC stats")
	}
	base := simulate(t, "gcc", lbic.LBICPort(4, 2))
	// The §5.2 enhancement should help gcc (queued same-line groups behind
	// strided leaders) — this locks in the ablation's headline result.
	if res.IPC < base.IPC {
		t.Errorf("greedy %.2f below leading %.2f on gcc", res.IPC, base.IPC)
	}
}

func TestCharacterizeWithFacade(t *testing.T) {
	prog, err := lbic.BuildBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	small, err := lbic.Characterize(ctx, prog, lbic.CharacterizeOptions{
		Insts: 80_000, Geom: lbic.Geometry{Size: 8 << 10, LineSize: 32, Assoc: 1}})
	if err != nil {
		t.Fatal(err)
	}
	big, err := lbic.Characterize(ctx, prog, lbic.CharacterizeOptions{
		Insts: 80_000, Geom: lbic.Geometry{Size: 128 << 10, LineSize: 32, Assoc: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if small.MissRate <= big.MissRate {
		t.Errorf("8KB miss %.4f should exceed 128KB miss %.4f", small.MissRate, big.MissRate)
	}
}

func TestTraceSimulationFacade(t *testing.T) {
	prog, err := lbic.BuildBenchmark("li")
	if err != nil {
		t.Fatal(err)
	}
	cfg := lbic.DefaultConfig()
	cfg.Port = lbic.BankedPort(4)
	cfg.MaxInsts = 5_000
	var sb strings.Builder
	res, err := lbic.TraceSimulation(prog, cfg, &sb, lbic.TraceOptions{MaxCycles: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts != 5_000 {
		t.Errorf("insts = %d", res.Insts)
	}
	out := sb.String()
	if !strings.Contains(out, "cycle") || !strings.Contains(out, "IPC") {
		t.Errorf("trace output malformed:\n%s", out)
	}
	// MaxCycles bounds the printed lines, not the run.
	if lines := strings.Count(out, "\n"); lines > 30 {
		t.Errorf("trace printed %d lines, want bounded", lines)
	}
}

func TestAssembleFacadeErrors(t *testing.T) {
	if _, err := lbic.Assemble("bad", "frobnicate r1\nhalt"); err == nil {
		t.Error("expected assembly error")
	}
	prog, err := lbic.Assemble("ok", "li r1, 5\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Code) != 2 {
		t.Errorf("code length = %d", len(prog.Code))
	}
}

func TestSelectorNamesFacade(t *testing.T) {
	p := lbic.BankedPort(4)
	p.Selector = lbic.WordInterleave
	if got := p.Name(); got != "bank-4-word-interleave" {
		t.Errorf("Name() = %q", got)
	}
	if fmt.Sprint(lbic.XorFold) != "xor-fold" {
		t.Error("selector string wrong")
	}
}

func TestBankedSQPortFacade(t *testing.T) {
	// Store queues must help the store-heavy integer codes over plain
	// banking, and the full LBIC must not be worse than plain banking.
	bank := simulate(t, "compress", lbic.BankedPort(4))
	sq := simulate(t, "compress", lbic.BankedSQPort(4))
	if sq.IPC < 1.05*bank.IPC {
		t.Errorf("banksq-4 %.2f should clearly beat bank-4 %.2f on compress", sq.IPC, bank.IPC)
	}
	if got := lbic.BankedSQPort(4).Name(); got != "banksq-4" {
		t.Errorf("Name() = %q", got)
	}
	if got := lbic.BankedStoreQueue.String(); got != "BankSQ" {
		t.Errorf("kind = %q", got)
	}
}

// TestConvergence guards the EXPERIMENTS.md claim that stream statistics
// converge within ~10^5 references: quadrupling the instruction budget moves
// IPC by only a few percent.
func TestConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence check is slow")
	}
	for _, bench := range []string{"compress", "swim"} {
		prog, err := lbic.BuildBenchmark(bench)
		if err != nil {
			t.Fatal(err)
		}
		run := func(insts uint64) float64 {
			cfg := lbic.DefaultConfig()
			cfg.Port = lbic.IdealPort(4)
			cfg.MaxInsts = insts
			res, err := lbic.Simulate(prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res.IPC
		}
		short, long := run(150_000), run(600_000)
		diff := (long - short) / long
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.06 {
			t.Errorf("%s: IPC moved %.1f%% from 150K to 600K insts (%.3f -> %.3f)",
				bench, 100*diff, short, long)
		}
	}
}

// Per-kernel shape locks: each benchmark's signature response to ports, so a
// workload regression that changes the story fails loudly.
func TestKernelShapeLocks(t *testing.T) {
	ipc := func(bench string, port lbic.PortConfig) float64 {
		return simulate(t, bench, port).IPC
	}
	// mgrid: the suite's biggest ideal-port winner (paper: 2.67 -> 18.6).
	if gain := ipc("mgrid", lbic.IdealPort(8)) / ipc("mgrid", lbic.IdealPort(1)); gain < 4 {
		t.Errorf("mgrid 1->8 ideal gain %.2fx, want >= 4x", gain)
	}
	// mgrid: bank conflicts bite at 4 banks, combining recovers (Table 4).
	bank := ipc("mgrid", lbic.BankedPort(4))
	comb := ipc("mgrid", lbic.LBICPort(4, 4))
	if comb < 1.5*bank {
		t.Errorf("mgrid 4x4 LBIC %.2f vs bank-4 %.2f, want >= 1.5x", comb, bank)
	}
	// compress: replication plateaus far below ideal (store ratio 0.81).
	if r := ipc("compress", lbic.ReplicatedPort(8)) / ipc("compress", lbic.IdealPort(8)); r > 0.8 {
		t.Errorf("compress repl-8/true-8 = %.2f, want < 0.8", r)
	}
	// li: 4-bank cache close to its ideal-4 (paper: 5.84 vs 6.58), unlike mgrid.
	if r := ipc("li", lbic.BankedPort(4)) / ipc("li", lbic.IdealPort(4)); r < 0.7 {
		t.Errorf("li bank-4/true-4 = %.2f, want >= 0.7", r)
	}
	// swim: combining recovers nearly all of ideal at 4 banks (Table 4).
	if r := ipc("swim", lbic.LBICPort(4, 4)) / ipc("swim", lbic.IdealPort(8)); r < 0.9 {
		t.Errorf("swim 4x4/true-8 = %.2f, want >= 0.9", r)
	}
}
