package lbic_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"lbic"
)

// rtInsts keeps the full generator × port matrix quick; the identities
// under test hold at any budget.
const rtInsts = 5000

// reportBytes is shared with tracecache_equiv_test.go.

func portCfg(t *testing.T, name string) lbic.Config {
	t.Helper()
	p, err := lbic.ParsePortName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lbic.DefaultConfig()
	cfg.Port = p
	return cfg
}

// TestGeneratorTraceRoundTrip is the aperture-opening identity: for every
// catalog generator and every port organization family, serializing the
// generator's recording to lbic-trace-stream/v1, reading it back, and
// replaying it produces a run report byte-identical to simulating the
// in-memory stream directly. It also pins the encoding's canonical
// property (re-encode of a decode is byte-identical).
func TestGeneratorTraceRoundTrip(t *testing.T) {
	ports := []string{"true-4", "repl-2", "virt-2", "bank-4", "banksq-4", "mpb-2x2", "lbic-4x2"}
	for _, g := range lbic.Generators() {
		g := g
		t.Run(g.Kind, func(t *testing.T) {
			t.Parallel()
			params := lbic.GenParams{Kind: g.Kind}
			rt, err := lbic.RecordGeneratorTrace(params, rtInsts)
			if err != nil {
				t.Fatal(err)
			}
			var enc bytes.Buffer
			if err := lbic.WriteTraceStream(&enc, rt); err != nil {
				t.Fatal(err)
			}
			decoded, err := lbic.ReadTraceStream(bytes.NewReader(enc.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if decoded.Name() != rt.Name() || decoded.Len() != rt.Len() {
				t.Fatalf("decode changed identity: %q/%d vs %q/%d", decoded.Name(), decoded.Len(), rt.Name(), rt.Len())
			}
			var reenc bytes.Buffer
			if err := lbic.WriteTraceStream(&reenc, decoded); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc.Bytes(), reenc.Bytes()) {
				t.Fatal("re-encoding the decoded stream is not byte-identical")
			}
			for _, pn := range ports {
				pn := pn
				t.Run(pn, func(t *testing.T) {
					t.Parallel()
					cfg := portCfg(t, pn)
					cfg.MaxInsts = rtInsts
					direct, err := lbic.SimulateGenerator(context.Background(), params, cfg)
					if err != nil {
						t.Fatal(err)
					}
					cfg.MaxInsts = 0 // whole trace
					replay, err := lbic.SimulateTrace(context.Background(), decoded, cfg)
					if err != nil {
						t.Fatal(err)
					}
					d, r := reportBytes(t, direct), reportBytes(t, replay)
					if !bytes.Equal(d, r) {
						t.Errorf("replayed report differs from direct generator report (%d vs %d bytes)", len(r), len(d))
					}
				})
			}
		})
	}
}

// TestBenchmarkTraceRoundTrip pins the same identity for an emulator-backed
// recording: replaying a recorded kernel matches simulating it live.
func TestBenchmarkTraceRoundTrip(t *testing.T) {
	prog, err := lbic.BuildBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := lbic.RecordBenchmarkTrace(prog, rtInsts)
	if err != nil {
		t.Fatal(err)
	}
	if rt.ValuesElided() {
		t.Fatal("benchmark recording dropped values")
	}
	var enc bytes.Buffer
	if err := lbic.WriteTraceStream(&enc, rt); err != nil {
		t.Fatal(err)
	}
	decoded, err := lbic.ReadTraceStream(&enc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := portCfg(t, "lbic-4x2")
	cfg.MaxInsts = rtInsts
	direct, err := lbic.Simulate(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxInsts = 0
	replay, err := lbic.SimulateTrace(context.Background(), decoded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportBytes(t, direct), reportBytes(t, replay)) {
		t.Error("replayed kernel report differs from live simulation")
	}
}

func TestSimulateTraceRejectsVerify(t *testing.T) {
	rt, err := lbic.RecordGeneratorTrace(lbic.GenParams{Kind: "chase"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lbic.DefaultConfig()
	cfg.Verify = true
	if _, err := lbic.SimulateTrace(context.Background(), rt, cfg); err == nil || !strings.Contains(err.Error(), "Verify") {
		t.Errorf("Verify replay: err = %v, want a Verify rejection", err)
	}
	if _, err := lbic.SimulateGenerator(context.Background(), lbic.GenParams{Kind: "chase"}, cfg); err == nil || !strings.Contains(err.Error(), "Verify") {
		t.Errorf("Verify generator: err = %v, want a Verify rejection", err)
	}
}

func TestSimulateGeneratorNeedsBudget(t *testing.T) {
	cfg := lbic.DefaultConfig()
	cfg.MaxInsts = 0
	if _, err := lbic.SimulateGenerator(context.Background(), lbic.GenParams{Kind: "zipf"}, cfg); err == nil {
		t.Error("unbounded generator run accepted")
	}
	if _, err := lbic.RecordGeneratorTrace(lbic.GenParams{Kind: "zipf"}, 0); err == nil {
		t.Error("unbounded generator recording accepted")
	}
}
