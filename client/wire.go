// Package client is the Go client for lbicd, the batched simulation
// service (cmd/lbicd). It also defines the service's wire contract — the
// versioned lbic-sim-request/v1 request schema and the job/cell response
// types — which internal/server imports, so the two sides cannot drift.
package client

import (
	"encoding/json"
	"fmt"

	"lbic"
)

// RequestSchema identifies the request JSON layout accepted by
// /v1/simulate and /v1/sweep.
const RequestSchema = "lbic-sim-request/v1"

// PortSpec names one port organization in a request. On the wire it is
// either a compact name string ("lbic-4x2", "bank-8-xor-fold", optionally
// with a "-sqD" store-queue suffix — the PortConfig.Key grammar) or a
// structured object in PortConfig's JSON form ({"kind": "lbic", "banks": 4,
// "line_ports": 2}). Custom ports are not expressible: their arbiter
// factory is a function and cannot cross the wire.
type PortSpec struct {
	// Name is the compact form; used when Config is nil.
	Name string
	// Config is the structured form; takes precedence when non-nil.
	Config *lbic.PortConfig
}

// Port returns a PortSpec for the compact name form.
func Port(name string) PortSpec { return PortSpec{Name: name} }

// PortOf returns a PortSpec for a structured configuration.
func PortOf(cfg lbic.PortConfig) PortSpec { return PortSpec{Config: &cfg} }

// Resolve parses the spec into a validated PortConfig.
func (p PortSpec) Resolve() (lbic.PortConfig, error) {
	if p.Config != nil {
		if err := p.Config.Validate(); err != nil {
			return lbic.PortConfig{}, err
		}
		return *p.Config, nil
	}
	return lbic.ParsePortName(p.Name)
}

// MarshalJSON encodes the structured form when set, the name otherwise.
func (p PortSpec) MarshalJSON() ([]byte, error) {
	if p.Config != nil {
		return json.Marshal(p.Config)
	}
	return json.Marshal(p.Name)
}

// UnmarshalJSON accepts either a name string or a PortConfig object.
func (p *PortSpec) UnmarshalJSON(data []byte) error {
	*p = PortSpec{}
	var name string
	if err := json.Unmarshal(data, &name); err == nil {
		p.Name = name
		return nil
	}
	var cfg lbic.PortConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("port: want a name string or a config object: %w", err)
	}
	p.Config = &cfg
	return nil
}

// String returns the spec's stable identity — the name, or the structured
// config's Key.
func (p PortSpec) String() string {
	if p.Config != nil {
		return p.Config.Key()
	}
	return p.Name
}

// SimulateRequest asks /v1/simulate for one run. Exactly one of Benchmark
// (a paper kernel name), Pattern (an access-pattern microbenchmark), or
// Trace (an uploaded serialized trace) names the workload.
type SimulateRequest struct {
	// Schema must be RequestSchema.
	Schema string `json:"schema"`
	// Benchmark names one of the ten Table 2 kernels.
	Benchmark string `json:"benchmark,omitempty"`
	// Pattern names an access-pattern microbenchmark instead.
	Pattern string `json:"pattern,omitempty"`
	// Trace is a serialized lbic-trace-stream/v1 stream to replay instead of
	// a named program (base64-encoded on the wire, as encoding/json does for
	// byte slices). Produce one with lbic.WriteTraceStream or
	// `lbicsim -trace-dump`. The server fully validates the stream before
	// running it.
	Trace []byte `json:"trace,omitempty"`
	// Port selects the L1 port organization.
	Port PortSpec `json:"port"`
	// Insts is the instruction budget; it must be positive for Benchmark and
	// Pattern runs (the kernels are non-halting steady-state loops, and
	// recording needs a bound). For Trace runs 0 replays the whole trace.
	Insts uint64 `json:"insts"`
	// CPU overrides the Table 1 processor baseline when non-nil.
	CPU *lbic.CPUConfig `json:"cpu,omitempty"`
	// Mem overrides the Table 1 memory hierarchy baseline when non-nil.
	Mem *lbic.MemParams `json:"mem,omitempty"`
}

// SweepRequest asks /v1/sweep for the cross product of benchmarks and
// ports — a whole paper table in one request. The response is an accepted
// job; poll /v1/jobs/{id} or stream it for per-cell results.
type SweepRequest struct {
	// Schema must be RequestSchema.
	Schema string `json:"schema"`
	// Benchmarks lists kernel names; empty means all ten in Table 2 order.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Ports lists the port organizations to sweep.
	Ports []PortSpec `json:"ports"`
	// Insts is the per-cell instruction budget; it must be positive.
	Insts uint64 `json:"insts"`
	// CPU/Mem override the Table 1 baselines for every cell when non-nil.
	CPU *lbic.CPUConfig `json:"cpu,omitempty"`
	Mem *lbic.MemParams `json:"mem,omitempty"`
}

// CellResult is one finished sweep cell.
type CellResult struct {
	// Key is the cell's stable identity, e.g. "sim/compress/lbic-4x2/i100000".
	Key string `json:"key"`
	// Benchmark and Port echo the cell's coordinates.
	Benchmark string `json:"benchmark"`
	Port      string `json:"port"`
	// Cached reports that the cell was served from the result cache.
	Cached bool `json:"cached,omitempty"`
	// ElapsedNS is the wall-clock time the server spent producing this cell,
	// including cache lookups and singleflight waits.
	ElapsedNS int64 `json:"elapsed_ns,omitempty"`
	// Error is set when the cell failed; Report is empty then.
	Error string `json:"error,omitempty"`
	// Report is the cell's lbic-run-report/v1 document.
	Report json.RawMessage `json:"report,omitempty"`
}

// Job states.
const (
	JobRunning  = "running"
	JobDone     = "done"
	JobCanceled = "canceled"
)

// JobStatus is the state of a sweep job (/v1/jobs/{id}).
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Total, Done, and Failed count the job's cells.
	Total  int `json:"total"`
	Done   int `json:"done"`
	Failed int `json:"failed"`
	// Results holds the finished cells so far, in completion order.
	Results []CellResult `json:"results,omitempty"`
}

// StreamEvent is one line of a job's JSONL progress stream (or one SSE
// data payload).
type StreamEvent struct {
	// Type is "cell" for a finished cell, "done" when the job completes.
	Type string `json:"type"`
	// Cell is set for "cell" events.
	Cell *CellResult `json:"cell,omitempty"`
	// Status is set for "done" events (without the Results bulk).
	Status *JobStatus `json:"status,omitempty"`
}

// Health is the body of GET /healthz: liveness plus enough build identity
// to tell which binary answered. For cluster members it doubles as the
// heartbeat payload: the coordinator polls each worker's /healthz and reads
// the capacity fields off the response.
type Health struct {
	Status string `json:"status"`
	// Role is how the process was launched: "standalone" (the default),
	// "worker", or "coordinator".
	Role string `json:"role,omitempty"`
	// UptimeSeconds is the time since the server process constructed its
	// Server, in seconds.
	UptimeSeconds float64 `json:"uptime_seconds,omitempty"`
	// GoVersion, Module, Version, and Revision come from the binary's
	// embedded build info (debug.ReadBuildInfo); Revision is the VCS commit
	// when the binary was built from a checkout.
	GoVersion string `json:"go_version,omitempty"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	// MaxParallel and QueuedCells advertise capacity: the concurrency bound
	// and the admitted-but-unfinished cell count at the time of the scrape.
	MaxParallel int `json:"max_parallel,omitempty"`
	QueuedCells int `json:"queued_cells"`
}

// ClusterStatus is the body of GET /v1/cluster on a coordinator: worker
// membership as the heartbeat loop sees it, the content-addressed result
// store's counters, and the dispatcher's robustness tallies.
type ClusterStatus struct {
	// Fingerprint is the code identity the result store is keyed under.
	Fingerprint string `json:"fingerprint"`
	// Workers lists every configured worker, evicted or not.
	Workers []ClusterWorker `json:"workers"`
	// StoreHits/StoreMisses/StorePuts count content-addressed store traffic
	// (all zero when the coordinator runs without a store directory).
	StoreHits   uint64 `json:"store_hits"`
	StoreMisses uint64 `json:"store_misses"`
	StorePuts   uint64 `json:"store_puts"`
	// Dispatched counts cells offered to the cluster; RemoteOK of those were
	// served by a worker, Retries counts extra attempts after a failed one,
	// Hedges counts duplicate dispatches fired at stragglers and HedgeWins
	// how many of those duplicates finished first. Unavailable counts cells
	// the cluster could not serve at all — the coordinator's server ran
	// those locally (graceful degradation).
	Dispatched  uint64 `json:"dispatched"`
	RemoteOK    uint64 `json:"remote_ok"`
	Retries     uint64 `json:"retries"`
	Hedges      uint64 `json:"hedges"`
	HedgeWins   uint64 `json:"hedge_wins"`
	Unavailable uint64 `json:"unavailable"`
}

// ClusterWorker is one worker's membership state in a ClusterStatus.
type ClusterWorker struct {
	Addr string `json:"addr"`
	// Healthy is the heartbeat verdict; ConsecutiveFails counts missed
	// heartbeats since the last success (eviction trips past a threshold,
	// one success readmits).
	Healthy          bool `json:"healthy"`
	ConsecutiveFails int  `json:"consecutive_fails,omitempty"`
	// LastSeenAgeSeconds is how long ago the last successful heartbeat was
	// (negative when the worker has never answered).
	LastSeenAgeSeconds float64 `json:"last_seen_age_seconds"`
	// MaxParallel and QueuedCells echo the worker's advertised capacity.
	MaxParallel int `json:"max_parallel,omitempty"`
	QueuedCells int `json:"queued_cells"`
	// Dispatched, Served, and Errors count this worker's cell traffic as the
	// coordinator saw it.
	Dispatched uint64 `json:"dispatched"`
	Served     uint64 `json:"served"`
	Errors     uint64 `json:"errors"`
}

// ErrorResponse is the body of every non-2xx JSON error.
type ErrorResponse struct {
	Error string `json:"error"`
}
