package client_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"lbic/client"
)

// flakySSE serves a job stream that drops the connection after the first
// event; subsequent connections must present Last-Event-ID and receive only
// the unseen suffix.
type flakySSE struct {
	conns   atomic.Int32
	lastIDs chan string
}

func (f *flakySSE) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := f.conns.Add(1)
	f.lastIDs <- r.Header.Get("Last-Event-ID")
	w.Header().Set("Content-Type", "text/event-stream")
	fl := w.(http.Flusher)
	if n == 1 {
		fmt.Fprint(w, "event: cell\nid: 0\ndata: {\"type\":\"cell\",\"cell\":{\"key\":\"k0\"}}\n\n")
		fl.Flush()
		// Sever mid-stream: the client saw event 0 but no done.
		panic(http.ErrAbortHandler)
	}
	// The resumed connection replays event 0 anyway — a server ignoring
	// Last-Event-ID — so the client-side id filter must drop it.
	fmt.Fprint(w, "event: cell\nid: 0\ndata: {\"type\":\"cell\",\"cell\":{\"key\":\"k0\"}}\n\n")
	fmt.Fprint(w, "event: cell\nid: 1\ndata: {\"type\":\"cell\",\"cell\":{\"key\":\"k1\"}}\n\n")
	fmt.Fprint(w, "event: done\nid: 2\ndata: {\"type\":\"done\",\"status\":{\"id\":\"job-1\",\"state\":\"done\"}}\n\n")
	fl.Flush()
}

func TestStreamSSEReconnectsWithoutDoubleCounting(t *testing.T) {
	f := &flakySSE{lastIDs: make(chan string, 4)}
	ts := httptest.NewServer(f)
	defer ts.Close()

	var got []string
	err := client.New(ts.URL).StreamSSE(context.Background(), "job-1", func(ev client.StreamEvent) error {
		if ev.Type == "cell" {
			got = append(got, ev.Cell.Key)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("StreamSSE did not survive the dropped connection: %v", err)
	}
	if f.conns.Load() != 2 {
		t.Errorf("connections = %d, want 2 (one drop, one resume)", f.conns.Load())
	}
	if first := <-f.lastIDs; first != "" {
		t.Errorf("first connection sent Last-Event-ID %q, want none", first)
	}
	if resumed := <-f.lastIDs; resumed != "0" {
		t.Errorf("resumed connection sent Last-Event-ID %q, want \"0\"", resumed)
	}
	// Each cell exactly once, despite the replayed prefix.
	if len(got) != 2 || got[0] != "k0" || got[1] != "k1" {
		t.Errorf("delivered cells %v, want exactly [k0 k1]", got)
	}
}

func TestStreamSSECallbackErrorAbortsWithoutReconnect(t *testing.T) {
	f := &flakySSE{lastIDs: make(chan string, 4)}
	ts := httptest.NewServer(f)
	defer ts.Close()
	wantErr := fmt.Errorf("observer said stop")
	err := client.New(ts.URL).StreamSSE(context.Background(), "job-1", func(ev client.StreamEvent) error {
		return wantErr
	})
	if err != wantErr {
		t.Errorf("err = %v, want the callback's error surfaced directly", err)
	}
	if f.conns.Load() != 1 {
		t.Errorf("connections = %d, want 1 (callback errors must not reconnect)", f.conns.Load())
	}
}

func TestStreamSSEGivesUpAfterRepeatedFailures(t *testing.T) {
	var conns atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns.Add(1)
		panic(http.ErrAbortHandler) // every connection dies before any event
	}))
	defer ts.Close()
	err := client.New(ts.URL).StreamSSE(context.Background(), "job-1", func(client.StreamEvent) error { return nil })
	if err == nil {
		t.Fatal("StreamSSE succeeded against a server that never delivers")
	}
	if n := conns.Load(); n < 2 {
		t.Errorf("connections = %d, want evidence of bounded retrying", n)
	}
}
