package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"lbic"
)

// Client talks to an lbicd server.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8329".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when non-nil.
	HTTPClient *http.Client
}

// New returns a client for the server at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// APIError is a non-2xx server response.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Message is the server's error text.
	Message string
	// RetryAfter carries the Retry-After header's seconds on 429/503, 0
	// otherwise.
	RetryAfter int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("lbicd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// do issues one request and returns the response on 2xx, an *APIError
// otherwise.
func (c *Client) do(ctx context.Context, method, path string, body any) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 == 2 {
		return resp, nil
	}
	defer resp.Body.Close()
	apiErr := &APIError{StatusCode: resp.StatusCode}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		apiErr.RetryAfter = ra
	}
	var er ErrorResponse
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(raw, &er) == nil && er.Error != "" {
		apiErr.Message = er.Error
	} else {
		apiErr.Message = strings.TrimSpace(string(raw))
	}
	if apiErr.Message == "" {
		apiErr.Message = resp.Status
	}
	return nil, apiErr
}

// Simulate runs one simulation and returns the raw lbic-run-report/v1
// document exactly as served — byte-identical to Report.WriteJSON of a
// direct in-process run with the same configuration.
func (c *Client) Simulate(ctx context.Context, req SimulateRequest) ([]byte, error) {
	if req.Schema == "" {
		req.Schema = RequestSchema
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/simulate", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// SimulateReport is Simulate parsed into a Report.
func (c *Client) SimulateReport(ctx context.Context, req SimulateRequest) (lbic.Report, error) {
	raw, err := c.Simulate(ctx, req)
	if err != nil {
		return lbic.Report{}, err
	}
	return lbic.ReadReport(bytes.NewReader(raw))
}

// Sweep submits a sweep and returns the accepted job's initial status.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (JobStatus, error) {
	if req.Schema == "" {
		req.Schema = RequestSchema
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/sweep", req)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return JobStatus{}, fmt.Errorf("lbicd: decoding job status: %w", err)
	}
	return st, nil
}

// Job fetches a job's current status, including all finished cells.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return JobStatus{}, fmt.Errorf("lbicd: decoding job status: %w", err)
	}
	return st, nil
}

// Stream follows a job's JSONL progress stream, invoking fn for every
// event (already-finished cells replay first, so a late subscriber misses
// nothing). It returns when the job completes, fn returns an error, or ctx
// is canceled.
func (c *Client) Stream(ctx context.Context, id string, fn func(StreamEvent) error) error {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("lbicd: decoding stream event: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
		if ev.Type == "done" {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("lbicd: job stream ended without a done event")
}

// Wait streams the job to completion and returns its final status with all
// cell results.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	if err := c.Stream(ctx, id, func(StreamEvent) error { return nil }); err != nil {
		return JobStatus{}, err
	}
	return c.Job(ctx, id)
}

// Healthz checks the server's health endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	resp, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Health fetches the health endpoint's full body: status, uptime, and the
// serving binary's build identity.
func (c *Client) Health(ctx context.Context) (Health, error) {
	resp, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return Health{}, err
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return Health{}, fmt.Errorf("lbicd: decoding health: %w", err)
	}
	return h, nil
}

// JobTrace fetches a job's span tree (GET /v1/jobs/{id}/trace) as parsed
// lbic-trace/v1 spans. Fetching while the job runs returns a consistent
// snapshot with in-flight spans marked open.
func (c *Client) JobTrace(ctx context.Context, id string) (lbic.TraceJSONLHeader, []lbic.TraceSpan, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/trace", nil)
	if err != nil {
		return lbic.TraceJSONLHeader{}, nil, err
	}
	defer resp.Body.Close()
	return lbic.ReadTraceJSONL(resp.Body)
}

// StreamSSE follows a job's progress stream in Server-Sent Events framing,
// invoking fn for every event, like Stream does for JSONL. Use it when an
// intermediary (or the caller) wants SSE semantics; the two streams carry
// identical events.
//
// The stream is resumable: the server stamps each event with an id: field,
// and on a dropped connection StreamSSE reconnects with backoff, sending
// Last-Event-ID so the server replays only the unseen suffix. Already-
// consumed ids are additionally filtered client-side, so fn never sees an
// event twice even against a server that ignores the header. Reconnection
// covers transport failures only; an HTTP error status or an error from fn
// is returned immediately.
func (c *Client) StreamSSE(ctx context.Context, id string, fn func(StreamEvent) error) error {
	const maxAttempts = 5
	lastID := -1 // highest event id delivered to fn; -1 = none yet
	backoff := 250 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
			if backoff < 4*time.Second {
				backoff *= 2
			}
		}
		before := lastID
		done, err := c.streamSSEOnce(ctx, id, &lastID, fn)
		if done {
			return nil
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) || errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) || isCallbackErr(err) {
			return unwrapCallbackErr(err)
		}
		lastErr = err
		if lastID > before {
			// The connection made progress before dropping; treat the next
			// reconnect as fresh rather than burning the attempt budget.
			attempt = 0
			backoff = 250 * time.Millisecond
		}
	}
	return fmt.Errorf("lbicd: SSE stream failed after reconnects: %w", lastErr)
}

// callbackErr marks an error produced by the caller's fn, which must abort
// the stream rather than trigger a reconnect.
type callbackErr struct{ err error }

func (e callbackErr) Error() string { return e.err.Error() }

func isCallbackErr(err error) bool {
	var ce callbackErr
	return errors.As(err, &ce)
}

func unwrapCallbackErr(err error) error {
	var ce callbackErr
	if errors.As(err, &ce) {
		return ce.err
	}
	return err
}

// streamSSEOnce runs one SSE connection, delivering events with id > *lastID
// to fn and advancing *lastID past each delivery. It returns done=true once
// the done event is consumed; otherwise the error says why the connection
// ended.
func (c *Client) streamSSEOnce(ctx context.Context, id string, lastID *int, fn func(StreamEvent) error) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if *lastID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(*lastID))
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var er ErrorResponse
		msg := strings.TrimSpace(string(raw))
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return false, &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	// evID is the id: field of the event currently being framed; -1 means the
	// server sent none, in which case events are delivered unconditionally
	// (legacy framing, no resume).
	evID := -1
	for sc.Scan() {
		line := sc.Bytes()
		// SSE framing: "event: t" names the next event, "id: n" numbers it,
		// "data: {...}" carries it. The server sends one data line per event,
		// so dispatch on it directly.
		if idf, ok := bytes.CutPrefix(line, []byte("id: ")); ok {
			if n, err := strconv.Atoi(string(idf)); err == nil {
				evID = n
			}
			continue
		}
		data, ok := bytes.CutPrefix(line, []byte("data: "))
		if !ok {
			continue
		}
		if evID >= 0 && evID <= *lastID {
			// Replayed prefix from a server that ignored Last-Event-ID —
			// already delivered, do not double-count.
			evID = -1
			continue
		}
		var ev StreamEvent
		if err := json.Unmarshal(data, &ev); err != nil {
			return false, fmt.Errorf("lbicd: decoding SSE event: %w", err)
		}
		if err := fn(ev); err != nil {
			return false, callbackErr{err}
		}
		if evID >= 0 {
			*lastID = evID
		}
		evID = -1
		if ev.Type == "done" {
			return true, nil
		}
	}
	if err := sc.Err(); err != nil {
		return false, err
	}
	return false, fmt.Errorf("lbicd: SSE stream ended without a done event")
}

// Cluster fetches the coordinator's cluster status (GET /v1/cluster):
// worker membership, dispatch counters, and result-store statistics. A
// standalone server (no cluster wired) answers 404.
func (c *Client) Cluster(ctx context.Context) (ClusterStatus, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/cluster", nil)
	if err != nil {
		return ClusterStatus{}, err
	}
	defer resp.Body.Close()
	var st ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return ClusterStatus{}, fmt.Errorf("lbicd: decoding cluster status: %w", err)
	}
	return st, nil
}

// Metrics fetches the server's metrics as a structured snapshot
// (GET /metrics?format=json).
func (c *Client) Metrics(ctx context.Context) (lbic.MetricsSnapshot, error) {
	resp, err := c.do(ctx, http.MethodGet, "/metrics?format=json", nil)
	if err != nil {
		return lbic.MetricsSnapshot{}, err
	}
	defer resp.Body.Close()
	var snap lbic.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return lbic.MetricsSnapshot{}, fmt.Errorf("lbicd: decoding metrics: %w", err)
	}
	return snap, nil
}

// CounterValue returns the named counter from a metrics snapshot (0 if
// absent, with ok=false).
func CounterValue(snap lbic.MetricsSnapshot, name string) (uint64, bool) {
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}
