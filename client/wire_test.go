package client

import (
	"encoding/json"
	"reflect"
	"testing"

	"lbic"
)

func TestPortSpecStringForm(t *testing.T) {
	var sp PortSpec
	if err := json.Unmarshal([]byte(`"lbic-4x2-greedy"`), &sp); err != nil {
		t.Fatal(err)
	}
	p, err := sp.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want := lbic.LBICPort(4, 2)
	want.Greedy = true
	if !reflect.DeepEqual(p, want) {
		t.Errorf("resolved %+v, want %+v", p, want)
	}
	raw, err := json.Marshal(Port("bank-8"))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `"bank-8"` {
		t.Errorf("marshal = %s", raw)
	}
}

func TestPortSpecObjectForm(t *testing.T) {
	var sp PortSpec
	if err := json.Unmarshal([]byte(`{"kind":"lbic","banks":4,"line_ports":2,"store_queue_depth":4}`), &sp); err != nil {
		t.Fatal(err)
	}
	p, err := sp.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if p.Key() != "lbic-4x2-sq4" {
		t.Errorf("Key() = %q", p.Key())
	}
	// Marshal of the object form stays an object.
	raw, err := json.Marshal(PortOf(p))
	if err != nil {
		t.Fatal(err)
	}
	var back PortSpec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Config == nil || !reflect.DeepEqual(*back.Config, p) {
		t.Errorf("object round trip: %s -> %+v", raw, back.Config)
	}
}

func TestPortSpecRejectsInvalid(t *testing.T) {
	for _, src := range []string{`"lbic-3x2"`, `"nope"`, `{"kind":"custom"}`, `{"kind":"lbic","banks":3,"line_ports":2}`, `42`} {
		var sp PortSpec
		if err := json.Unmarshal([]byte(src), &sp); err != nil {
			continue // rejected at decode time is fine too
		}
		if _, err := sp.Resolve(); err == nil {
			t.Errorf("PortSpec %s resolved without error", src)
		}
	}
}

func TestRequestSchemaConstant(t *testing.T) {
	// The wire contract is versioned; a schema bump must be deliberate.
	if RequestSchema != "lbic-sim-request/v1" {
		t.Fatalf("RequestSchema = %q", RequestSchema)
	}
}
