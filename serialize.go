package lbic

import (
	"fmt"
	"strconv"
	"strings"

	"lbic/internal/ports"
)

// This file is the one serialization the CLI (`lbicsim -config`), the lbicd
// service schema (`lbic-sim-request/v1`), and sweep journals share:
// PortKind and BankSelectorKind marshal as their canonical name tokens,
// PortConfig/Config carry JSON tags and Validate methods, and ParsePortName
// inverts PortConfig.Key for the compact one-line form.

// portKindNames maps each kind to its canonical serialization token (the
// prefix of PortConfig.Name).
var portKindNames = map[PortKind]string{
	Ideal:            "true",
	Replicated:       "repl",
	Banked:           "bank",
	LBIC:             "lbic",
	VirtualMultiport: "virt",
	BankedStoreQueue: "banksq",
	MultiPortedBanks: "mpb",
}

// MarshalText encodes the kind as its canonical name token ("true", "repl",
// "bank", "lbic", "virt", "banksq", "mpb"). Custom kinds fail: a custom
// port's factory is a function and cannot cross a serialization boundary.
func (k PortKind) MarshalText() ([]byte, error) {
	if name, ok := portKindNames[k]; ok {
		return []byte(name), nil
	}
	if k == customPortKind {
		return nil, fmt.Errorf("lbic: custom ports do not serialize (the arbiter factory is a function)")
	}
	return nil, fmt.Errorf("lbic: unknown port kind %d", int(k))
}

// UnmarshalText is the inverse of MarshalText; "ideal" is accepted as an
// alias for "true".
func (k *PortKind) UnmarshalText(text []byte) error {
	name := string(text)
	if name == "ideal" {
		*k = Ideal
		return nil
	}
	for kind, n := range portKindNames {
		if n == name {
			*k = kind
			return nil
		}
	}
	if name == "custom" {
		return fmt.Errorf("lbic: custom ports do not deserialize (the arbiter factory is a function)")
	}
	return fmt.Errorf("lbic: unknown port kind %q (have true, repl, bank, lbic, virt, banksq, mpb)", name)
}

// ParsePortName parses the compact one-line port serialization produced by
// PortConfig.Key (and therefore also the Name form, which omits the
// store-queue suffix): "true-4", "repl-2", "bank-8", "bank-8-xor-fold",
// "banksq-8", "banksq-8-sq4", "lbic-4x2", "lbic-4x2-greedy", "virt-2",
// "mpb-2x2", with an optional trailing "-sqD" store-queue depth override.
// "ideal-N" is accepted as an alias for "true-N". Custom port names are not
// parseable — the factory cannot be reconstructed from a string.
func ParsePortName(name string) (PortConfig, error) {
	orig := name
	fail := func() (PortConfig, error) {
		return PortConfig{}, fmt.Errorf("lbic: cannot parse port name %q (want e.g. true-4, repl-2, bank-8[-xor-fold], lbic-4x2[-greedy], virt-2, banksq-8, mpb-2x2, optionally -sqD)", orig)
	}

	var p PortConfig
	// Peel a trailing "-sqD" store-queue depth override. The only kind token
	// containing "sq" is "banksq", whose Key never has a bare "-sq" substring
	// ("banksq-8" — the "sq" is not preceded by '-'), so this is unambiguous.
	if i := strings.LastIndex(name, "-sq"); i >= 0 {
		if d, err := strconv.Atoi(name[i+3:]); err == nil && d > 0 {
			p.StoreQueueDepth = d
			name = name[:i]
		}
	}

	kindTok, rest, ok := strings.Cut(name, "-")
	if !ok {
		return fail()
	}
	if kindTok == "ideal" {
		kindTok = "true"
	}
	if err := p.Kind.UnmarshalText([]byte(kindTok)); err != nil {
		return fail()
	}

	switch p.Kind {
	case Ideal, Replicated, VirtualMultiport:
		w, err := strconv.Atoi(rest)
		if err != nil {
			return fail()
		}
		p.Width = w
	case Banked:
		// "8" or "8-xor-fold".
		numTok, selTok, hasSel := strings.Cut(rest, "-")
		b, err := strconv.Atoi(numTok)
		if err != nil {
			return fail()
		}
		p.Banks = b
		if hasSel {
			sel, err := ports.ParseSelectorKind(selTok)
			if err != nil {
				return fail()
			}
			p.Selector = sel
		}
	case BankedStoreQueue:
		b, err := strconv.Atoi(rest)
		if err != nil {
			return fail()
		}
		p.Banks = b
	case LBIC:
		// "MxN" or "MxN-greedy".
		dims, greedyTok, hasGreedy := strings.Cut(rest, "-")
		if hasGreedy {
			if greedyTok != "greedy" {
				return fail()
			}
			p.Greedy = true
		}
		mTok, nTok, ok := strings.Cut(dims, "x")
		if !ok {
			return fail()
		}
		m, err1 := strconv.Atoi(mTok)
		n, err2 := strconv.Atoi(nTok)
		if err1 != nil || err2 != nil {
			return fail()
		}
		p.Banks, p.LinePorts = m, n
	case MultiPortedBanks:
		mTok, wTok, ok := strings.Cut(rest, "x")
		if !ok {
			return fail()
		}
		m, err1 := strconv.Atoi(mTok)
		w, err2 := strconv.Atoi(wTok)
		if err1 != nil || err2 != nil {
			return fail()
		}
		p.Banks, p.Width = m, w
	default:
		return fail()
	}
	if err := p.Validate(); err != nil {
		return PortConfig{}, fmt.Errorf("lbic: port name %q: %w", orig, err)
	}
	return p, nil
}

// powerOfTwo reports whether n is a positive power of two.
func powerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// Validate checks the configuration's parameters against its kind's
// structural rules, mirroring what the arbiter constructors enforce at
// build time so a bad config fails fast at the serialization boundary.
func (p PortConfig) Validate() error {
	if p.StoreQueueDepth < 0 {
		return fmt.Errorf("lbic: store queue depth %d is negative", p.StoreQueueDepth)
	}
	switch p.Kind {
	case Ideal, Replicated, VirtualMultiport:
		if p.Width < 1 {
			return fmt.Errorf("lbic: %s port width %d < 1", p.Kind, p.Width)
		}
	case Banked, BankedStoreQueue:
		if !powerOfTwo(p.Banks) {
			return fmt.Errorf("lbic: %s bank count %d is not a positive power of two", p.Kind, p.Banks)
		}
	case LBIC:
		if !powerOfTwo(p.Banks) {
			return fmt.Errorf("lbic: LBIC bank count %d is not a positive power of two", p.Banks)
		}
		if p.LinePorts < 1 {
			return fmt.Errorf("lbic: LBIC line ports %d < 1", p.LinePorts)
		}
	case MultiPortedBanks:
		if !powerOfTwo(p.Banks) {
			return fmt.Errorf("lbic: MPB bank count %d is not a positive power of two", p.Banks)
		}
		if p.Width < 1 {
			return fmt.Errorf("lbic: MPB ports per bank %d < 1", p.Width)
		}
	case customPortKind:
		if p.custom == nil {
			return fmt.Errorf("lbic: custom port without a factory")
		}
	default:
		return fmt.Errorf("lbic: unknown port kind %d", int(p.Kind))
	}
	return nil
}

// Validate checks the full simulation configuration: the port organization
// plus any CPU and memory-hierarchy overrides.
func (c Config) Validate() error {
	if err := c.Port.Validate(); err != nil {
		return err
	}
	if c.CPU != nil {
		if err := c.CPU.Validate(); err != nil {
			return err
		}
	}
	if c.Mem != nil {
		if err := c.Mem.Validate(); err != nil {
			return err
		}
	}
	return nil
}
