package lbic

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is the one serialization the CLI (`lbicsim -config`), the lbicd
// service schema (`lbic-sim-request/v1`), and sweep journals share:
// PortKind and BankSelectorKind marshal as their canonical name tokens,
// PortConfig/Config carry JSON tags and Validate methods, and ParsePortName
// inverts PortConfig.Key for the compact one-line form. Every per-kind rule
// here — token, grammar, validation — comes from the port-organization
// registry (registry.go); this file only owns the kind-independent framing
// (the "-sqD" store-queue suffix and the common depth check).

// MarshalText encodes the kind as its canonical name token ("true", "repl",
// "bank", "lbic", "virt", "banksq", "mpb", "coded"). Custom kinds fail: a
// custom port's factory is a function and cannot cross a serialization
// boundary.
func (k PortKind) MarshalText() ([]byte, error) {
	o, ok := portOrgFor(k)
	if !ok {
		return nil, fmt.Errorf("lbic: unknown port kind %d", int(k))
	}
	if !o.wire {
		return nil, fmt.Errorf("lbic: custom ports do not serialize (the arbiter factory is a function)")
	}
	return []byte(o.token), nil
}

// UnmarshalText is the inverse of MarshalText; "ideal" is accepted as an
// alias for "true".
func (k *PortKind) UnmarshalText(text []byte) error {
	name := string(text)
	if o, ok := portOrgByToken(name); ok {
		if !o.wire {
			return fmt.Errorf("lbic: custom ports do not deserialize (the arbiter factory is a function)")
		}
		*k = o.kind
		return nil
	}
	return fmt.Errorf("lbic: unknown port kind %q (have %s)", name, strings.Join(portTokens(), ", "))
}

// ParsePortName parses the compact one-line port serialization produced by
// PortConfig.Key (and therefore also the Name form, which omits the
// store-queue suffix): "true-4", "repl-2", "bank-8", "bank-8-xor-fold",
// "banksq-8", "banksq-8-sq4", "lbic-4x2", "lbic-4x2-greedy", "virt-2",
// "mpb-2x2", "coded-4x1", "coded-4x2-lb2", "coded-4x1-spec", with an
// optional trailing "-sqD" store-queue depth override. "ideal-N" is accepted
// as an alias for "true-N". The per-kind grammar is registry-derived; custom
// port names are not parseable — the factory cannot be reconstructed from a
// string.
func ParsePortName(name string) (PortConfig, error) {
	orig := name
	fail := func() (PortConfig, error) {
		return PortConfig{}, fmt.Errorf("lbic: cannot parse port name %q (want e.g. true-4, repl-2, bank-8[-xor-fold], lbic-4x2[-greedy], virt-2, banksq-8, mpb-2x2, coded-4x1[-lbN][-spec], optionally -sqD)", orig)
	}

	// Peel a trailing "-sqD" store-queue depth override. The only kind token
	// containing "sq" is "banksq", whose Key never has a bare "-sq" substring
	// ("banksq-8" — the "sq" is not preceded by '-'), so this is unambiguous.
	var depth int
	if i := strings.LastIndex(name, "-sq"); i >= 0 {
		if d, err := strconv.Atoi(name[i+3:]); err == nil && d > 0 {
			depth = d
			name = name[:i]
		}
	}

	kindTok, rest, ok := strings.Cut(name, "-")
	if !ok {
		return fail()
	}
	o, ok := portOrgByToken(kindTok)
	if !ok || o.parse == nil {
		return fail()
	}
	p, ok := o.parse(rest)
	if !ok {
		return fail()
	}
	p.StoreQueueDepth = depth
	if err := p.Validate(); err != nil {
		return PortConfig{}, fmt.Errorf("lbic: port name %q: %w", orig, err)
	}
	return p, nil
}

// powerOfTwo reports whether n is a positive power of two.
func powerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// Validate checks the configuration's parameters against its kind's
// structural rules (registry-derived), mirroring what the arbiter
// constructors enforce at build time so a bad config fails fast at the
// serialization boundary.
func (p PortConfig) Validate() error {
	if p.StoreQueueDepth < 0 {
		return fmt.Errorf("lbic: store queue depth %d is negative", p.StoreQueueDepth)
	}
	o, ok := portOrgFor(p.Kind)
	if !ok {
		return fmt.Errorf("lbic: unknown port kind %d", int(p.Kind))
	}
	return o.validate(p)
}

// Validate checks the full simulation configuration: the port organization
// plus any CPU and memory-hierarchy overrides.
func (c Config) Validate() error {
	if err := c.Port.Validate(); err != nil {
		return err
	}
	if c.CPU != nil {
		if err := c.CPU.Validate(); err != nil {
			return err
		}
	}
	if c.Mem != nil {
		if err := c.Mem.Validate(); err != nil {
			return err
		}
	}
	return nil
}
