package lbic_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"lbic"
)

// panicArbiter blows up on its first Grant, standing in for a buggy
// user-supplied design.
type panicArbiter struct{}

func (panicArbiter) Name() string   { return "panic" }
func (panicArbiter) PeakWidth() int { return 1 }
func (panicArbiter) Grant(_ uint64, _ []lbic.Request, _ []int) []int {
	panic("arbiter bug: grant exploded")
}

// stuckArbiter never grants, so the pipeline starves at its first load.
type stuckArbiter struct{}

func (stuckArbiter) Name() string                                    { return "stuck" }
func (stuckArbiter) PeakWidth() int                                  { return 1 }
func (stuckArbiter) Grant(_ uint64, _ []lbic.Request, d []int) []int { return d }

func smallCfg(port lbic.PortConfig) lbic.Config {
	cfg := lbic.DefaultConfig()
	cfg.Port = port
	cfg.MaxInsts = 20_000
	return cfg
}

func TestSimulateRecoversArbiterPanic(t *testing.T) {
	prog, err := lbic.BuildBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	port := lbic.CustomPort("panic", func(int) (lbic.Arbiter, error) { return panicArbiter{}, nil })
	_, err = lbic.Simulate(prog, smallCfg(port))
	if err == nil {
		t.Fatal("Simulate returned nil error for a panicking arbiter")
	}
	if !strings.Contains(err.Error(), "arbiter bug: grant exploded") {
		t.Errorf("error %q does not carry the panic value", err)
	}
	if !strings.Contains(err.Error(), "goroutine") {
		t.Errorf("error %q does not carry a stack trace", err)
	}
}

func TestSimulateReportsHangWithWatchdog(t *testing.T) {
	prog, err := lbic.BuildBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	port := lbic.CustomPort("stuck", func(int) (lbic.Arbiter, error) { return stuckArbiter{}, nil })
	cfg := smallCfg(port)
	cpuCfg := lbic.DefaultCPUConfig()
	cpuCfg.WatchdogCycles = 1000
	cfg.CPU = &cpuCfg
	_, err = lbic.Simulate(prog, cfg)
	if err == nil {
		t.Fatal("Simulate returned nil error for a starved pipeline")
	}
	if !strings.Contains(err.Error(), "no forward progress") {
		t.Errorf("error %q is not a watchdog diagnostic", err)
	}
}

func TestSimulateContextDeadline(t *testing.T) {
	prog, err := lbic.BuildBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	port := lbic.CustomPort("stuck", func(int) (lbic.Arbiter, error) { return stuckArbiter{}, nil })
	cfg := smallCfg(port)
	cpuCfg := lbic.DefaultCPUConfig()
	cpuCfg.WatchdogCycles = -1 // watchdog off: the deadline is the only exit
	cfg.CPU = &cpuCfg
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = lbic.SimulateContext(ctx, prog, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SimulateContext = %v, want deadline exceeded", err)
	}
}

func TestGuardFaultIsError(t *testing.T) {
	// A null-pointer load (inside the vm guard region) must surface as a
	// "program faulted" error, not a process panic.
	b := lbic.NewBuilder("null-deref")
	b.Ld(lbic.R(1), lbic.R(0), 0x10)
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = lbic.Simulate(prog, lbic.DefaultConfig())
	if err == nil || !strings.Contains(err.Error(), "faulted") {
		t.Fatalf("Simulate = %v, want faulted error", err)
	}
}
