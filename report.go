package lbic

import (
	"encoding/json"
	"fmt"
	"io"

	"lbic/internal/cache"
	"lbic/internal/core"
	"lbic/internal/cpu"
	"lbic/internal/metrics"
	"lbic/internal/ports"
	"lbic/internal/stats"
	"lbic/internal/trace"
)

// Observability re-exports, so applications and the commands need only this
// package.
type (
	// MetricsRegistry holds a run's histograms and gauges beyond the
	// aggregate CPU/Mem counters; see Result.Metrics.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a registry's JSON-exportable state.
	MetricsSnapshot = metrics.Snapshot
	// Event is one structured trace event (cycle, kind, seq, bank, line,
	// cause).
	Event = trace.Event
	// EventSink receives structured trace events; see Config.Events.
	EventSink = trace.EventSink
	// JSONLEventSink writes events as JSON Lines; check Err after the run.
	JSONLEventSink = trace.JSONLSink
	// Table is a renderable results table (text, Markdown, JSON).
	Table = stats.Table
	// StallCause indexes CPUStats.StallCycles, the CPI stall stack.
	StallCause = cpu.StallCause
)

// NewJSONLEventSink returns an event sink writing one JSON object per line
// to w, for Config.Events.
func NewJSONLEventSink(w io.Writer) *JSONLEventSink { return trace.NewJSONLSink(w) }

// StallCauseNames returns the CPI stall stack bucket names in
// CPUStats.StallCycles order.
func StallCauseNames() []string { return cpu.StallCauseNames() }

// ReportSchema identifies the run-report JSON layout.
const ReportSchema = "lbic-run-report/v1"

// ReportPort describes the port organization of a run report.
type ReportPort struct {
	Name      string `json:"name"`
	Kind      string `json:"kind"`
	PeakWidth int    `json:"peak_width"`
	Width     int    `json:"width,omitempty"`
	Banks     int    `json:"banks,omitempty"`
	LinePorts int    `json:"line_ports,omitempty"`
	Selector  string `json:"selector,omitempty"`
	Greedy    bool   `json:"greedy,omitempty"`
	// ParityBanks and Speculative describe Coded runs.
	ParityBanks int  `json:"parity_banks,omitempty"`
	Speculative bool `json:"speculative,omitempty"`
	// Label distinguishes custom arbiters (see CustomPort).
	Label string `json:"label,omitempty"`
}

// StallBucket is one named entry of the CPI stall stack.
type StallBucket struct {
	Cause  string `json:"cause"`
	Cycles uint64 `json:"cycles"`
}

// Report is the complete machine-readable record of one run — the document
// `lbicsim -json` writes. It carries the configuration, the aggregate CPU
// and memory counters, the CPI stall stack (buckets sum to Cycles), and
// every histogram and gauge of the run's metrics registry, so performance
// work can diff whole runs (see scripts/reportdiff) instead of eyeballing
// stdout.
type Report struct {
	Schema    string     `json:"schema"`
	Benchmark string     `json:"benchmark"`
	Port      ReportPort `json:"port"`
	Insts     uint64     `json:"insts"`
	Cycles    uint64     `json:"cycles"`
	IPC       float64    `json:"ipc"`

	CPIStack []StallBucket `json:"cpi_stack"`
	CPU      CPUStats      `json:"cpu"`
	Mem      MemStats      `json:"mem"`
	// LBIC carries combining statistics for LBIC runs.
	LBIC *LBICStats `json:"lbic,omitempty"`
	// BankConflicts carries the aggregate conflict count for Banked runs.
	BankConflicts uint64 `json:"bank_conflicts,omitempty"`
	// Coded carries reconstruction and code-update statistics for Coded runs.
	Coded   *CodedStats     `json:"coded,omitempty"`
	Metrics MetricsSnapshot `json:"metrics"`
	// TraceCache carries the shared trace cache's counters for runs that
	// replayed a recorded trace (see Config.Trace).
	TraceCache *TraceCacheStats `json:"trace_cache,omitempty"`
}

// PeakWidth returns the organization's maximum accesses per cycle,
// registry-derived.
func (p PortConfig) PeakWidth() int {
	if o, ok := portOrgFor(p.Kind); ok {
		return o.peak(p)
	}
	return 0
}

// reportPort flattens a PortConfig for the report, registry-derived.
func reportPort(p PortConfig) ReportPort {
	rp := ReportPort{Name: p.Name(), Kind: p.Kind.String(), PeakWidth: p.PeakWidth()}
	if o, ok := portOrgFor(p.Kind); ok && o.report != nil {
		o.report(p, &rp)
	}
	return rp
}

// CPIStack returns the run's stall stack as named buckets in StallCause
// order; the cycle counts sum to Cycles.
func (r Result) CPIStack() []StallBucket {
	names := cpu.StallCauseNames()
	out := make([]StallBucket, len(names))
	for i, name := range names {
		out[i] = StallBucket{Cause: name, Cycles: r.CPU.StallCycles[i]}
	}
	return out
}

// NewReport assembles the machine-readable report of a finished run.
func NewReport(res Result) Report {
	rep := Report{
		Schema:        ReportSchema,
		Benchmark:     res.Benchmark,
		Port:          reportPort(res.Port),
		Insts:         res.Insts,
		Cycles:        res.Cycles,
		IPC:           res.IPC,
		CPIStack:      res.CPIStack(),
		CPU:           res.CPU,
		Mem:           res.Mem,
		LBIC:          res.LBIC,
		BankConflicts: res.BankConflicts,
		Coded:         res.Coded,
		TraceCache:    res.TraceCache,
	}
	if res.Metrics != nil {
		rep.Metrics = res.Metrics.Snapshot()
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a report written by WriteJSON (or `lbicsim -json`).
func ReadReport(rd io.Reader) (Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("lbic: parsing run report: %w", err)
	}
	if rep.Schema != ReportSchema {
		return Report{}, fmt.Errorf("lbic: unknown report schema %q (want %q)", rep.Schema, ReportSchema)
	}
	return rep, nil
}

// buildMetricsRegistry collects the run's live metric objects and derived
// histograms into one registry, in stable report order.
func buildMetricsRegistry(c *cpu.Core, hier *cache.Hierarchy, arb ports.Arbiter, st cpu.Stats) *metrics.Registry {
	reg := metrics.NewRegistry()

	cpi := reg.Histogram("cpu.cpi_stack",
		"every cycle attributed to the head-of-window stall cause", "", cpu.NumStallCauses)
	cpi.BucketNames = cpu.StallCauseNames()
	for cause, n := range st.StallCycles {
		cpi.ObserveN(cause, n)
	}

	reg.AddHistogram(c.GrantsPerCycle())
	reg.AddGauge(c.OccupancyGauges()...)
	reg.AddHistogram(hier.MSHROccupancy())

	if bo, ok := arb.(ports.BankObserver); ok {
		fill := func(name, help string, vec []uint64) {
			h := reg.Histogram(name, help, "bank", len(vec))
			for b, n := range vec {
				h.ObserveN(b, n)
			}
		}
		fill("port.bank_accesses", "grants per bank (load balance across banks)", bo.BankAccesses())
		fill("port.bank_conflicts", "requests stalled per bank (the §3 conflict characterization)", bo.BankConflicts())
		if ba, ok := arb.(*ports.Banked); ok {
			fill("port.bank_same_line_conflicts",
				"stalled requests whose line was already open in the bank (§4 same-line share)",
				ba.BankSameLineConflicts())
		}
	}
	if l, ok := arb.(*core.LBIC); ok {
		widths := l.CombineWidths()
		h := reg.Histogram("lbic.combine_width",
			"bank-cycles by number of same-line accesses served (width 1 = no combining)",
			"width", len(widths))
		for w, n := range widths {
			h.ObserveN(w, n)
		}
	}
	if cd, ok := arb.(*ports.Coded); ok {
		cs := cd.Stats()
		h := reg.Histogram("coded.activity",
			"coded-banks events: reconstructed reads, retired code updates, update stalls, stale-code squashes, combined accesses",
			"", 5)
		h.BucketNames = []string{"reconstructions", "code_updates", "update_stalls", "stale_code", "combined"}
		h.ObserveN(0, cs.Reconstructions)
		h.ObserveN(1, cs.CodeUpdates)
		h.ObserveN(2, cs.UpdateStalls)
		h.ObserveN(3, cs.StaleCode+cs.Replays)
		h.ObserveN(4, cs.Combined)
	}
	return reg
}

// CPUStatsTable renders the processor counters as a table — the `lbicsim
// -v` view.
func CPUStatsTable(s CPUStats) *Table {
	t := stats.NewTable("cpu statistics", "counter", "value")
	t.AddRowf("cycles", s.Cycles)
	t.AddRowf("dispatched", s.Dispatched)
	t.AddRowf("issued", s.Issued)
	t.AddRowf("committed", s.Committed)
	t.AddRow("ipc", stats.FormatIPC(s.IPC()))
	t.AddRowf("loads", s.Loads)
	t.AddRowf("stores", s.Stores)
	t.AddRowf("lsq forwards", s.Forwards)
	t.AddRowf("forward waits", s.ForwardWaits)
	t.AddRowf("ordering stalls", s.OrderingStalls)
	t.AddRowf("port grants", s.PortGrants)
	t.AddRowf("port grants blocked (MSHR)", s.PortBlocked)
	t.AddRowf("dispatch stalls (RUU full)", s.DispatchStallRUU)
	t.AddRowf("dispatch stalls (LSQ full)", s.DispatchStallLSQ)
	t.AddRowf("commit stalls (store buffer)", s.CommitStallStoreBuf)
	for cl, n := range s.IssuedByClass {
		if n > 0 {
			t.AddRowf(fmt.Sprintf("issued %s", FUClass(cl)), n)
		}
	}
	return t
}

// MemStatsTable renders the memory-hierarchy counters as a table.
func MemStatsTable(s MemStats) *Table {
	t := stats.NewTable("memory statistics", "counter", "value")
	t.AddRowf("L1 accesses", s.Accesses)
	t.AddRowf("L1 hits", s.Hits)
	t.AddRowf("L1 misses (new)", s.MissesNew)
	t.AddRowf("L1 misses (merged)", s.MissesMerge)
	t.AddRow("L1 miss rate", fmt.Sprintf("%.4f", s.MissRate()))
	t.AddRowf("blocked (MSHR/target full)", s.Blocked)
	t.AddRowf("L2 accesses", s.L2Accesses)
	t.AddRowf("L2 misses", s.L2Misses)
	t.AddRowf("writebacks", s.Writebacks)
	t.AddRowf("fills", s.Fills)
	return t
}

// CPIStackTable renders the stall stack with cycle shares.
func CPIStackTable(res Result) *Table {
	t := stats.NewTable("CPI stall stack", "cause", "cycles", "share")
	for _, b := range res.CPIStack() {
		share := 0.0
		if res.Cycles > 0 {
			share = float64(b.Cycles) / float64(res.Cycles)
		}
		t.AddRow(b.Cause, fmt.Sprintf("%d", b.Cycles), stats.FormatPct(share))
	}
	t.AddRowf("total", res.Cycles)
	return t
}
