package lbic

import "lbic/internal/asm"

// Assemble parses assembly text for the simulator's ISA and returns the
// program. See the internal/asm package documentation for the syntax; the
// short version:
//
//	.alloc buf 4096 64      # data, with 'buf' usable as an immediate symbol
//	.word64 buf+8 42
//	start:
//	    li   r1, buf
//	    ld   r2, 8(r1)
//	    add  r2, r2, r2
//	    sd   r2, 16(r1)
//	    halt
func Assemble(name, source string) (*Program, error) {
	return asm.Assemble(name, source)
}
