package lbic_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"lbic"
)

// TestSimulateBatchMatchesScalar is the batched stepping core's load-bearing
// property: a lane batch of K configurations stepping off one shared cursor
// must produce, for every lane, a report byte-identical to a scalar run of
// the same configuration — for every port organization, at K ∈ {2, 4, 8},
// both replaying the trace cache and driving a shared live emulator. The K
// subtests run in parallel, so -race also covers concurrent batches sharing
// one trace cache.
func TestSimulateBatchMatchesScalar(t *testing.T) {
	prog, err := lbic.BuildBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	const insts = 30_000
	orgs := equivPorts()
	tc := lbic.NewTraceCache(0)

	// Scalar references, one per port organization, computed before the
	// parallel subtests so every lane compares against the same bytes.
	want := make([][]byte, len(orgs))
	for i, port := range orgs {
		cfg := lbic.DefaultConfig()
		cfg.Port = port
		cfg.MaxInsts = insts
		res, err := lbic.Simulate(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = reportBytes(t, res)
	}

	for _, k := range []int{2, 4, 8} {
		for _, replay := range []bool{true, false} {
			k, replay := k, replay
			name := "live"
			if replay {
				name = "replay"
			}
			t.Run(fmt.Sprintf("%s-k%d", name, k), func(t *testing.T) {
				t.Parallel()
				cfgs := make([]lbic.Config, k)
				for i := range cfgs {
					cfg := lbic.DefaultConfig()
					cfg.Port = orgs[i%len(orgs)]
					cfg.MaxInsts = insts
					if replay {
						cfg.Trace = tc
					}
					cfgs[i] = cfg
				}
				results, errs, err := lbic.SimulateBatch(context.Background(), prog, cfgs)
				if err != nil {
					t.Fatal(err)
				}
				for i := range cfgs {
					if errs[i] != nil {
						t.Fatalf("lane %d: %v", i, errs[i])
					}
					got := reportBytes(t, results[i])
					if !bytes.Equal(want[i%len(orgs)], got) {
						t.Errorf("lane %d (%s, %s) diverges from scalar run:\nscalar: %s\nlane:   %s",
							i, cfgs[i].Port.Name(), name,
							firstDiff(want[i%len(orgs)], got), firstDiff(got, want[i%len(orgs)]))
					}
				}
			})
		}
	}
}

// TestSimulateBatchVerified runs a lane batch with the oracle enabled on
// every lane: the shared live emulator must stop at exactly the instruction
// budget for each lane's final-memory check to hold.
func TestSimulateBatchVerified(t *testing.T) {
	prog, err := lbic.BuildBenchmark("li")
	if err != nil {
		t.Fatal(err)
	}
	ports := []lbic.PortConfig{lbic.BankedPort(4), lbic.LBICPort(4, 2), lbic.IdealPort(2)}
	cfgs := make([]lbic.Config, len(ports))
	for i, port := range ports {
		cfg := lbic.DefaultConfig()
		cfg.Port = port
		cfg.MaxInsts = 10_000
		cfg.Verify = true
		// A Verify lane must force the live-emulator source even when the
		// batch could otherwise replay.
		cfg.Trace = lbic.NewTraceCache(0)
		cfgs[i] = cfg
	}
	results, errs, err := lbic.SimulateBatch(context.Background(), prog, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if errs[i] != nil {
			t.Fatalf("lane %d: %v", i, errs[i])
		}
		if results[i].Verify == nil {
			t.Errorf("lane %d carries no verification summary", i)
		}
		if results[i].TraceCache != nil {
			t.Errorf("lane %d replayed from the trace cache despite Verify", i)
		}
	}
	for i, cfg := range cfgs {
		if s := cfg.Trace.Stats(); s.Records != 0 || s.Hits != 0 {
			t.Errorf("lane %d touched the trace cache: %+v", i, s)
		}
	}
}

// TestSimulateGeneratorBatchMatchesScalar: lanes sharing one synthetic
// stream must each match a scalar SimulateGenerator of the same
// configuration byte for byte.
func TestSimulateGeneratorBatchMatchesScalar(t *testing.T) {
	params := lbic.GenParams{Kind: "zipf"}
	ports := []lbic.PortConfig{
		lbic.IdealPort(4), lbic.BankedPort(4), lbic.LBICPort(4, 2), lbic.ReplicatedPort(2),
	}
	const insts = 20_000
	want := make([][]byte, len(ports))
	for i, port := range ports {
		cfg := lbic.DefaultConfig()
		cfg.Port = port
		cfg.MaxInsts = insts
		res, err := lbic.SimulateGenerator(context.Background(), params, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = reportBytes(t, res)
	}
	cfgs := make([]lbic.Config, len(ports))
	for i, port := range ports {
		cfg := lbic.DefaultConfig()
		cfg.Port = port
		cfg.MaxInsts = insts
		cfgs[i] = cfg
	}
	results, errs, err := lbic.SimulateGeneratorBatch(context.Background(), params, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if errs[i] != nil {
			t.Fatalf("lane %d: %v", i, errs[i])
		}
		if got := reportBytes(t, results[i]); !bytes.Equal(want[i], got) {
			t.Errorf("lane %d (%s) diverges from scalar generator run:\nscalar: %s\nlane:   %s",
				i, ports[i].Name(), firstDiff(want[i], got), firstDiff(got, want[i]))
		}
	}
}

// TestSimulateBatchSingleLaneDelegates: a batch of one is exactly the scalar
// path, including its Result and error shape.
func TestSimulateBatchSingleLaneDelegates(t *testing.T) {
	prog, err := lbic.BuildBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	cfg := lbic.DefaultConfig()
	cfg.Port = lbic.BankedPort(4)
	cfg.MaxInsts = 5_000
	scalar, err := lbic.Simulate(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, errs, err := lbic.SimulateBatch(context.Background(), prog, []lbic.Config{cfg})
	if err != nil || errs[0] != nil {
		t.Fatal(err, errs)
	}
	if got, want := reportBytes(t, results[0]), reportBytes(t, scalar); !bytes.Equal(want, got) {
		t.Errorf("single-lane batch diverges from scalar run")
	}
}

// TestSimulateBatchRejectsBadConfigs covers the batch-wide invariants.
func TestSimulateBatchRejectsBadConfigs(t *testing.T) {
	prog, err := lbic.BuildBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := lbic.SimulateBatch(ctx, prog, nil); err == nil || !strings.Contains(err.Error(), "no lanes") {
		t.Errorf("empty batch: got %v", err)
	}
	zero := lbic.DefaultConfig()
	zero.Port = lbic.BankedPort(4)
	zero.MaxInsts = 0
	if _, _, err := lbic.SimulateBatch(ctx, prog, []lbic.Config{zero, zero}); err == nil || !strings.Contains(err.Error(), "MaxInsts") {
		t.Errorf("zero budget: got %v", err)
	}
	a, b := zero, zero
	a.MaxInsts, b.MaxInsts = 1_000, 2_000
	if _, _, err := lbic.SimulateBatch(ctx, prog, []lbic.Config{a, b}); err == nil || !strings.Contains(err.Error(), "mixes instruction budgets") {
		t.Errorf("mixed budgets: got %v", err)
	}
	v := a
	v.Verify = true
	if _, _, err := lbic.SimulateGeneratorBatch(ctx, lbic.GenParams{Kind: "zipf"}, []lbic.Config{a, v}); err == nil || !strings.Contains(err.Error(), "Verify") {
		t.Errorf("generator Verify lane: got %v", err)
	}
}
