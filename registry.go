package lbic

import (
	"fmt"
	"strconv"
	"strings"

	"lbic/internal/core"
	"lbic/internal/ports"
)

// This file is the port-organization registry: one table entry per kind
// carrying everything kind-specific — the serialization token, display name,
// JSON schema, name/key grammar, parser, validator, peak width, arbiter
// factory, report flattening, result-stat collection, and the kind's
// representative configurations for experiment axes. PortKind.String,
// PortConfig.Name/Key/Validate/PeakWidth, MarshalText/UnmarshalText,
// ParsePortName, buildArbiter, and reportPort all derive from it, so adding
// a port organization is one registry entry plus its arbiter — no parallel
// switch statements to keep in sync.

// portOrg is one registered port organization.
type portOrg struct {
	kind PortKind
	// token is the canonical serialization token (the Name prefix); aliases
	// are additionally accepted on parse.
	token   string
	aliases []string
	// display is the organization name used in the paper's tables.
	display string
	// wire reports whether the kind crosses serialization boundaries;
	// custom ports do not (the factory is a function).
	wire bool
	// schema lists the PortConfig JSON fields the kind consumes, the
	// machine-readable half of the lbicd request schema docs.
	schema []string
	// name renders the display name (Key adds the -sqD suffix on top).
	name func(p PortConfig) string
	// parse inverts name: it receives the text after "token-".
	parse func(rest string) (PortConfig, bool)
	// validate checks kind-specific structural rules (the common checks run
	// first).
	validate func(p PortConfig) error
	// peak is the organization's maximum accesses per cycle.
	peak func(p PortConfig) int
	// build constructs the arbiter.
	build func(p PortConfig, lineSize int) (ports.Arbiter, error)
	// report flattens the kind-specific fields into a ReportPort.
	report func(p PortConfig, rp *ReportPort)
	// collect extracts kind-specific stats from a finished arbiter into the
	// Result; nil for kinds without extra stats.
	collect func(arb ports.Arbiter, res *Result)
	// axis holds the kind's representative configurations for the
	// experiments port axes; empty keeps the kind out of the default axes.
	axis []PortConfig
	// samples extends axis with grammar-corner configurations for the
	// round-trip property tests.
	samples []PortConfig
}

var (
	portOrgs     = map[PortKind]*portOrg{}
	portOrgOrder []PortKind
)

// registerPortOrg installs one organization; duplicate kinds or tokens are
// programming errors.
func registerPortOrg(o portOrg) {
	if _, dup := portOrgs[o.kind]; dup {
		panic(fmt.Sprintf("lbic: port kind %d registered twice", int(o.kind)))
	}
	for _, prev := range portOrgOrder {
		if portOrgs[prev].token == o.token {
			panic(fmt.Sprintf("lbic: port token %q registered twice", o.token))
		}
	}
	entry := o
	portOrgs[o.kind] = &entry
	portOrgOrder = append(portOrgOrder, o.kind)
}

// portOrgFor looks up a kind's registry entry.
func portOrgFor(k PortKind) (*portOrg, bool) {
	o, ok := portOrgs[k]
	return o, ok
}

// portOrgByToken resolves a serialization token or alias.
func portOrgByToken(token string) (*portOrg, bool) {
	for _, k := range portOrgOrder {
		o := portOrgs[k]
		if o.token == token {
			return o, true
		}
		for _, a := range o.aliases {
			if a == token {
				return o, true
			}
		}
	}
	return nil, false
}

// portTokens lists the wire kinds' canonical tokens in registration order,
// for error messages.
func portTokens() []string {
	var out []string
	for _, k := range portOrgOrder {
		if o := portOrgs[k]; o.wire {
			out = append(out, o.token)
		}
	}
	return out
}

// PortOrgInfo describes one registered port organization, for tooling that
// enumerates the taxonomy (docs, the adversarial search's port axis, the
// lbicd schema listing).
type PortOrgInfo struct {
	Kind PortKind
	// Token is the canonical serialization token (the Name/Key prefix).
	Token string
	// Display is the organization name used in the paper's tables.
	Display string
	// Schema lists the PortConfig JSON fields the kind consumes.
	Schema []string
	// Axis holds the kind's representative configurations for experiment
	// port axes (empty for kinds excluded from the default axes).
	Axis []PortConfig
	// Wire reports whether the kind serializes (custom ports do not).
	Wire bool
}

// PortOrganizations lists every registered port organization in registration
// order.
func PortOrganizations() []PortOrgInfo {
	out := make([]PortOrgInfo, 0, len(portOrgOrder))
	for _, k := range portOrgOrder {
		o := portOrgs[k]
		out = append(out, PortOrgInfo{
			Kind:    o.kind,
			Token:   o.token,
			Display: o.display,
			Schema:  append([]string(nil), o.schema...),
			Axis:    append([]PortConfig(nil), o.axis...),
			Wire:    o.wire,
		})
	}
	return out
}

// PortAxis returns the default port-organization axis for experiment sweeps
// and the adversarial search: every registered kind's representative
// configurations, in registration order. Kinds without representatives
// (virtual multiporting, custom ports) contribute nothing.
func PortAxis() []PortConfig {
	var out []PortConfig
	for _, k := range portOrgOrder {
		out = append(out, portOrgs[k].axis...)
	}
	return out
}

// portSamples returns every registered kind's axis plus grammar-corner
// samples, the population of the serialization round-trip property tests.
func portSamples() []PortConfig {
	var out []PortConfig
	for _, k := range portOrgOrder {
		o := portOrgs[k]
		out = append(out, o.axis...)
		out = append(out, o.samples...)
	}
	return out
}

// --- shared grammar helpers ---

func parsePortInt(s string) (int, bool) {
	n, err := strconv.Atoi(s)
	return n, err == nil
}

// parsePortDims parses "MxN".
func parsePortDims(s string) (int, int, bool) {
	mTok, nTok, ok := strings.Cut(s, "x")
	if !ok {
		return 0, 0, false
	}
	m, ok1 := parsePortInt(mTok)
	n, ok2 := parsePortInt(nTok)
	return m, n, ok1 && ok2
}

// widthOrg builds the entry shape shared by the pure width-parameterized
// kinds (ideal, replicated, virtual).
func widthOrg(kind PortKind, token, display string, factory func(width int) (ports.Arbiter, error)) portOrg {
	return portOrg{
		kind:    kind,
		token:   token,
		display: display,
		wire:    true,
		schema:  []string{"kind", "width"},
		name: func(p PortConfig) string {
			return fmt.Sprintf("%s-%d", token, p.Width)
		},
		parse: func(rest string) (PortConfig, bool) {
			w, ok := parsePortInt(rest)
			return PortConfig{Kind: kind, Width: w}, ok
		},
		validate: func(p PortConfig) error {
			if p.Width < 1 {
				return fmt.Errorf("lbic: %s port width %d < 1", p.Kind, p.Width)
			}
			return nil
		},
		peak: func(p PortConfig) int { return p.Width },
		build: func(p PortConfig, _ int) (ports.Arbiter, error) {
			return factory(p.Width)
		},
		report: func(p PortConfig, rp *ReportPort) { rp.Width = p.Width },
	}
}

func init() {
	ideal := widthOrg(Ideal, "true", "True", func(w int) (ports.Arbiter, error) { return ports.NewIdeal(w) })
	ideal.aliases = []string{"ideal"}
	ideal.axis = []PortConfig{IdealPort(1), IdealPort(4)}
	registerPortOrg(ideal)

	repl := widthOrg(Replicated, "repl", "Repl", func(w int) (ports.Arbiter, error) { return ports.NewReplicated(w) })
	repl.axis = []PortConfig{ReplicatedPort(4)}
	registerPortOrg(repl)

	bankedXor := BankedPort(4)
	bankedXor.Selector = XorFold
	registerPortOrg(portOrg{
		kind:    Banked,
		token:   "bank",
		display: "Bank",
		wire:    true,
		schema:  []string{"kind", "banks", "selector"},
		name: func(p PortConfig) string {
			if p.Selector != BitSelect {
				return fmt.Sprintf("bank-%d-%s", p.Banks, p.Selector)
			}
			return fmt.Sprintf("bank-%d", p.Banks)
		},
		parse: func(rest string) (PortConfig, bool) {
			p := PortConfig{Kind: Banked}
			numTok, selTok, hasSel := strings.Cut(rest, "-")
			b, ok := parsePortInt(numTok)
			if !ok {
				return p, false
			}
			p.Banks = b
			if hasSel {
				sel, err := ports.ParseSelectorKind(selTok)
				if err != nil {
					return p, false
				}
				p.Selector = sel
			}
			return p, true
		},
		validate: powerOfTwoBanks,
		peak:     func(p PortConfig) int { return p.Banks },
		build: func(p PortConfig, lineSize int) (ports.Arbiter, error) {
			return ports.NewBankedSelector(p.Banks, lineSize, p.Selector)
		},
		report: func(p PortConfig, rp *ReportPort) {
			rp.Banks = p.Banks
			rp.Selector = p.Selector.String()
		},
		collect: func(arb ports.Arbiter, res *Result) {
			if a, ok := arb.(*ports.Banked); ok {
				res.BankConflicts = a.Conflicts
			}
		},
		axis: []PortConfig{BankedPort(4), bankedXor},
	})

	greedy := LBICPort(4, 2)
	greedy.Greedy = true
	registerPortOrg(portOrg{
		kind:    LBIC,
		token:   "lbic",
		display: "LBIC",
		wire:    true,
		schema:  []string{"kind", "banks", "line_ports", "greedy", "store_queue_depth"},
		name: func(p PortConfig) string {
			if p.Greedy {
				return fmt.Sprintf("lbic-%dx%d-greedy", p.Banks, p.LinePorts)
			}
			return fmt.Sprintf("lbic-%dx%d", p.Banks, p.LinePorts)
		},
		parse: func(rest string) (PortConfig, bool) {
			p := PortConfig{Kind: LBIC}
			dims, greedyTok, hasGreedy := strings.Cut(rest, "-")
			if hasGreedy {
				if greedyTok != "greedy" {
					return p, false
				}
				p.Greedy = true
			}
			var ok bool
			p.Banks, p.LinePorts, ok = parsePortDims(dims)
			return p, ok
		},
		validate: func(p PortConfig) error {
			if !powerOfTwo(p.Banks) {
				return fmt.Errorf("lbic: LBIC bank count %d is not a positive power of two", p.Banks)
			}
			if p.LinePorts < 1 {
				return fmt.Errorf("lbic: LBIC line ports %d < 1", p.LinePorts)
			}
			return nil
		},
		peak: func(p PortConfig) int { return p.Banks * p.LinePorts },
		build: func(p PortConfig, lineSize int) (ports.Arbiter, error) {
			policy := core.PolicyLeading
			if p.Greedy {
				policy = core.PolicyGreedy
			}
			return core.New(core.Config{
				Banks:           p.Banks,
				LinePorts:       p.LinePorts,
				LineSize:        lineSize,
				StoreQueueDepth: p.StoreQueueDepth,
				Policy:          policy,
			})
		},
		report: func(p PortConfig, rp *ReportPort) {
			rp.Banks = p.Banks
			rp.LinePorts = p.LinePorts
			rp.Greedy = p.Greedy
		},
		collect: func(arb ports.Arbiter, res *Result) {
			if a, ok := arb.(*core.LBIC); ok {
				ls := a.Stats()
				res.LBIC = &ls
			}
		},
		axis:    []PortConfig{LBICPort(4, 2), LBICPort(4, 4)},
		samples: []PortConfig{greedy},
	})

	virt := widthOrg(VirtualMultiport, "virt", "Virt",
		func(w int) (ports.Arbiter, error) { return ports.NewVirtual(w) })
	virt.samples = []PortConfig{VirtualPort(2)}
	registerPortOrg(virt)

	sq4 := BankedSQPort(8)
	sq4.StoreQueueDepth = 4
	registerPortOrg(portOrg{
		kind:    BankedStoreQueue,
		token:   "banksq",
		display: "BankSQ",
		wire:    true,
		schema:  []string{"kind", "banks", "store_queue_depth"},
		name: func(p PortConfig) string {
			return fmt.Sprintf("banksq-%d", p.Banks)
		},
		parse: func(rest string) (PortConfig, bool) {
			b, ok := parsePortInt(rest)
			return PortConfig{Kind: BankedStoreQueue, Banks: b}, ok
		},
		validate: powerOfTwoBanks,
		// One array access plus one store-queue acceptance per bank.
		peak: func(p PortConfig) int { return 2 * p.Banks },
		build: func(p PortConfig, lineSize int) (ports.Arbiter, error) {
			return ports.NewBankedSQ(p.Banks, lineSize, p.StoreQueueDepth)
		},
		report: func(p PortConfig, rp *ReportPort) {
			rp.Banks = p.Banks
			rp.Selector = p.Selector.String()
		},
		samples: []PortConfig{BankedSQPort(4), sq4},
	})

	registerPortOrg(portOrg{
		kind:    MultiPortedBanks,
		token:   "mpb",
		display: "MPB",
		wire:    true,
		schema:  []string{"kind", "banks", "width"},
		name: func(p PortConfig) string {
			return fmt.Sprintf("mpb-%dx%d", p.Banks, p.Width)
		},
		parse: func(rest string) (PortConfig, bool) {
			m, w, ok := parsePortDims(rest)
			return PortConfig{Kind: MultiPortedBanks, Banks: m, Width: w}, ok
		},
		validate: func(p PortConfig) error {
			if !powerOfTwo(p.Banks) {
				return fmt.Errorf("lbic: MPB bank count %d is not a positive power of two", p.Banks)
			}
			if p.Width < 1 {
				return fmt.Errorf("lbic: MPB ports per bank %d < 1", p.Width)
			}
			return nil
		},
		peak: func(p PortConfig) int { return p.Banks * p.Width },
		build: func(p PortConfig, lineSize int) (ports.Arbiter, error) {
			return ports.NewMultiPortedBanks(p.Banks, p.Width, lineSize)
		},
		report: func(p PortConfig, rp *ReportPort) {
			rp.Banks = p.Banks
			rp.Width = p.Width
		},
		samples: []PortConfig{MultiPortedBanksPort(2, 2)},
	})

	codedSpec := CodedPort(4, 1)
	codedSpec.Speculative = true
	codedComposed := CodedPort(4, 2)
	codedComposed.LinePorts = 2
	codedBoth := CodedPort(8, 2)
	codedBoth.LinePorts = 4
	codedBoth.Speculative = true
	registerPortOrg(portOrg{
		kind:    Coded,
		token:   "coded",
		display: "Coded",
		wire:    true,
		schema:  []string{"kind", "banks", "parity_banks", "line_ports", "speculative", "store_queue_depth"},
		name: func(p PortConfig) string {
			name := fmt.Sprintf("coded-%dx%d", p.Banks, p.ParityBanks)
			if p.LinePorts >= 2 {
				name += fmt.Sprintf("-lb%d", p.LinePorts)
			}
			if p.Speculative {
				name += "-spec"
			}
			return name
		},
		parse: func(rest string) (PortConfig, bool) {
			p := PortConfig{Kind: Coded}
			parts := strings.Split(rest, "-")
			var ok bool
			if p.Banks, p.ParityBanks, ok = parsePortDims(parts[0]); !ok {
				return p, false
			}
			for _, tok := range parts[1:] {
				switch {
				case tok == "spec" && !p.Speculative:
					p.Speculative = true
				case strings.HasPrefix(tok, "lb") && p.LinePorts == 0 && !p.Speculative:
					if p.LinePorts, ok = parsePortInt(tok[2:]); !ok {
						return p, false
					}
				default:
					return p, false
				}
			}
			return p, true
		},
		validate: func(p PortConfig) error {
			if !powerOfTwo(p.Banks) {
				return fmt.Errorf("lbic: coded bank count %d is not a positive power of two", p.Banks)
			}
			if p.ParityBanks < 1 {
				return fmt.Errorf("lbic: coded parity bank count %d < 1", p.ParityBanks)
			}
			if p.Banks < p.ParityBanks || p.Banks%p.ParityBanks != 0 {
				return fmt.Errorf("lbic: %d parity banks do not evenly divide %d data banks", p.ParityBanks, p.Banks)
			}
			if p.LinePorts == 1 || p.LinePorts < 0 {
				return fmt.Errorf("lbic: coded line ports %d (want 0 for no combining, or >= 2)", p.LinePorts)
			}
			if p.Selector != BitSelect {
				return fmt.Errorf("lbic: coded banks require bit-select line interleaving")
			}
			return nil
		},
		peak: func(p PortConfig) int {
			lp := p.LinePorts
			if lp < 1 {
				lp = 1
			}
			return p.Banks*lp + p.ParityBanks
		},
		build: func(p PortConfig, lineSize int) (ports.Arbiter, error) {
			return ports.NewCoded(ports.CodedConfig{
				Banks:            p.Banks,
				ParityBanks:      p.ParityBanks,
				LineSize:         lineSize,
				UpdateQueueDepth: p.StoreQueueDepth,
				LinePorts:        p.LinePorts,
				Speculative:      p.Speculative,
			})
		},
		report: func(p PortConfig, rp *ReportPort) {
			rp.Banks = p.Banks
			rp.ParityBanks = p.ParityBanks
			rp.LinePorts = p.LinePorts
			rp.Speculative = p.Speculative
		},
		collect: func(arb ports.Arbiter, res *Result) {
			if a, ok := arb.(*ports.Coded); ok {
				cs := a.Stats()
				res.Coded = &cs
			}
		},
		axis:    []PortConfig{CodedPort(4, 1)},
		samples: []PortConfig{CodedPort(4, 2), codedSpec, codedComposed, codedBoth},
	})

	registerPortOrg(portOrg{
		kind:    customPortKind,
		token:   "custom",
		display: "Custom",
		wire:    false,
		schema:  []string{"kind", "label"},
		name: func(p PortConfig) string {
			if p.Label != "" {
				return "custom-" + p.Label
			}
			return "custom"
		},
		validate: func(p PortConfig) error {
			if p.custom == nil {
				return fmt.Errorf("lbic: custom port without a factory")
			}
			return nil
		},
		peak: func(PortConfig) int { return 0 },
		build: func(p PortConfig, lineSize int) (ports.Arbiter, error) {
			if p.custom == nil {
				return nil, fmt.Errorf("lbic: custom port without a factory")
			}
			return p.custom(lineSize)
		},
		report: func(p PortConfig, rp *ReportPort) { rp.Label = p.Label },
	})
}

// powerOfTwoBanks is the shared validator of the plain banked kinds.
func powerOfTwoBanks(p PortConfig) error {
	if !powerOfTwo(p.Banks) {
		return fmt.Errorf("lbic: %s bank count %d is not a positive power of two", p.Kind, p.Banks)
	}
	return nil
}
