package lbic_test

import (
	"context"
	"testing"

	"lbic"
)

// testInsts keeps integration runs quick; claims tested here are about
// relative shapes, which settle well before this budget.
const testInsts = 150_000

func simulate(t *testing.T, bench string, port lbic.PortConfig) lbic.Result {
	t.Helper()
	prog, err := lbic.BuildBenchmark(bench)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lbic.DefaultConfig()
	cfg.Port = port
	cfg.MaxInsts = testInsts
	res, err := lbic.Simulate(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBenchmarkRegistry(t *testing.T) {
	names := lbic.BenchmarkNames()
	if len(names) != 10 {
		t.Fatalf("benchmarks = %v, want 10", names)
	}
	if _, err := lbic.BuildBenchmark("nope"); err == nil {
		t.Error("unknown benchmark should error")
	}
	infos := lbic.Benchmarks()
	ints, fps := 0, 0
	for _, in := range infos {
		switch in.Suite {
		case "int":
			ints++
		case "fp":
			fps++
		default:
			t.Errorf("%s: unknown suite %q", in.Name, in.Suite)
		}
	}
	if ints != 5 || fps != 5 {
		t.Errorf("suites = %d int + %d fp, want 5+5", ints, fps)
	}
}

func TestPortConfigNames(t *testing.T) {
	cases := map[string]lbic.PortConfig{
		"true-4":   lbic.IdealPort(4),
		"repl-2":   lbic.ReplicatedPort(2),
		"bank-8":   lbic.BankedPort(8),
		"lbic-4x2": lbic.LBICPort(4, 2),
	}
	for want, port := range cases {
		if got := port.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := simulate(t, "compress", lbic.IdealPort(2))
	b := simulate(t, "compress", lbic.IdealPort(2))
	if a.Cycles != b.Cycles || a.IPC != b.IPC {
		t.Errorf("nondeterministic: %v vs %v cycles", a.Cycles, b.Cycles)
	}
}

func TestSimulateRejectsBadConfig(t *testing.T) {
	prog, err := lbic.BuildBenchmark("li")
	if err != nil {
		t.Fatal(err)
	}
	cfg := lbic.DefaultConfig()
	cfg.Port = lbic.PortConfig{Kind: lbic.Banked, Banks: 3}
	if _, err := lbic.Simulate(prog, cfg); err == nil {
		t.Error("expected error for 3 banks")
	}
	cfg = lbic.DefaultConfig()
	cfg.Port = lbic.PortConfig{Kind: lbic.PortKind(99)}
	if _, err := lbic.Simulate(prog, cfg); err == nil {
		t.Error("expected error for unknown port kind")
	}
}

// §3.1: adding the second ideal port yields a large gain — the paper reports
// +89%/+92% on average; we require a clearly super-50% jump.
func TestSecondIdealPortGain(t *testing.T) {
	for _, bench := range []string{"compress", "li", "mgrid", "swim"} {
		one := simulate(t, bench, lbic.IdealPort(1)).IPC
		two := simulate(t, bench, lbic.IdealPort(2)).IPC
		if two < 1.5*one {
			t.Errorf("%s: 1->2 ideal ports %.2f -> %.2f, want >= +50%%", bench, one, two)
		}
	}
}

// §3.1: ideal port scaling is monotone and saturates: the 8->16 step is far
// smaller than the 1->2 step.
func TestIdealScalingSaturates(t *testing.T) {
	for _, bench := range []string{"compress", "li", "swim"} {
		var ipc []float64
		for _, p := range []int{1, 2, 4, 8, 16} {
			ipc = append(ipc, simulate(t, bench, lbic.IdealPort(p)).IPC)
		}
		for i := 1; i < len(ipc); i++ {
			if ipc[i] < ipc[i-1]*0.98 {
				t.Errorf("%s: IPC dropped adding ports: %v", bench, ipc)
			}
		}
		first := ipc[1] - ipc[0]
		last := ipc[4] - ipc[3]
		if last > first/2 {
			t.Errorf("%s: no saturation: steps %v", bench, ipc)
		}
	}
}

// §3.1: replication trails ideal because stores broadcast; the degradation
// is big for store-heavy compress and negligible for mgrid (ratio 0.04).
func TestReplicationStorePenalty(t *testing.T) {
	idealC := simulate(t, "compress", lbic.IdealPort(4)).IPC
	replC := simulate(t, "compress", lbic.ReplicatedPort(4)).IPC
	if replC > 0.8*idealC {
		t.Errorf("compress: repl-4 %.2f vs true-4 %.2f: expected a clear store penalty", replC, idealC)
	}
	idealM := simulate(t, "mgrid", lbic.IdealPort(4)).IPC
	replM := simulate(t, "mgrid", lbic.ReplicatedPort(4)).IPC
	if replM < 0.85*idealM {
		t.Errorf("mgrid: repl-4 %.2f vs true-4 %.2f: store-poor mgrid should track ideal", replM, idealM)
	}
}

// §3.2: multi-banking overtakes replication as ports grow for store-heavy
// programs (the paper names compress and gcc).
func TestBankingOvertakesReplication(t *testing.T) {
	for _, bench := range []string{"compress", "gcc"} {
		bank := simulate(t, bench, lbic.BankedPort(8)).IPC
		repl := simulate(t, bench, lbic.ReplicatedPort(8)).IPC
		if bank <= repl {
			t.Errorf("%s: bank-8 %.2f <= repl-8 %.2f, paper expects banking ahead", bench, bank, repl)
		}
	}
}

// §3.2: bank conflicts keep the banked design below ideal for conflict-heavy
// programs (mgrid is the paper's clearest case at 4 banks).
func TestBankConflictsVisible(t *testing.T) {
	ideal := simulate(t, "mgrid", lbic.IdealPort(4)).IPC
	res := simulate(t, "mgrid", lbic.BankedPort(4))
	if res.IPC > 0.9*ideal {
		t.Errorf("mgrid: bank-4 %.2f vs true-4 %.2f: expected visible conflicts", res.IPC, ideal)
	}
	if res.BankConflicts == 0 {
		t.Error("bank conflict counter empty")
	}
}

// §6: the LBIC matches or beats the comparable banked design on every
// benchmark (combining only removes conflicts).
func TestLBICBeatsBankedEverywhere(t *testing.T) {
	for _, bench := range lbic.BenchmarkNames() {
		bank := simulate(t, bench, lbic.BankedPort(4)).IPC
		lb := simulate(t, bench, lbic.LBICPort(4, 2)).IPC
		if lb < 0.97*bank {
			t.Errorf("%s: lbic-4x2 %.2f < bank-4 %.2f", bench, lb, bank)
		}
	}
}

// §6: a 4x4 LBIC performs at least as well as the 8-bank cache on average —
// the paper's headline cost argument (Table 4 vs Table 3).
func TestLBIC4x4VersusEightBanks(t *testing.T) {
	var lbSum, bankSum float64
	for _, bench := range lbic.BenchmarkNames() {
		lbSum += simulate(t, bench, lbic.LBICPort(4, 4)).IPC
		bankSum += simulate(t, bench, lbic.BankedPort(8)).IPC
	}
	if lbSum < 0.95*bankSum {
		t.Errorf("lbic-4x4 average %.2f clearly below bank-8 average %.2f", lbSum/10, bankSum/10)
	}
}

// §6: SPECfp gains more from doubling N (combining) than SPECint does —
// the paper's Table 4 observation about where combining pays.
func TestCombiningHelpsFP(t *testing.T) {
	gain := func(bench string) float64 {
		n2 := simulate(t, bench, lbic.LBICPort(4, 2)).IPC
		n4 := simulate(t, bench, lbic.LBICPort(4, 4)).IPC
		return n4 / n2
	}
	// mgrid and su2cor are the paper's strongest combining beneficiaries.
	if g := gain("mgrid"); g < 1.1 {
		t.Errorf("mgrid: 4x2 -> 4x4 gain %.3f, want >= 1.1", g)
	}
}

// LBIC statistics are populated and coherent.
func TestLBICResultStats(t *testing.T) {
	res := simulate(t, "li", lbic.LBICPort(4, 2))
	if res.LBIC == nil {
		t.Fatal("LBIC stats missing")
	}
	if res.LBIC.Combined == 0 {
		t.Error("no combined accesses on li (heavy same-line locality)")
	}
	granted := res.LBIC.Leading + res.LBIC.Combined
	if granted != res.CPU.PortGrants {
		t.Errorf("lbic grants %d != cpu port grants %d", granted, res.CPU.PortGrants)
	}
}

// Figure 3 distributions: the same-bank skew the paper reports, and the
// per-program signatures it calls out.
func TestRefStreamSkew(t *testing.T) {
	sameBank := func(bench string) lbic.Distribution {
		prog, err := lbic.BuildBenchmark(bench)
		if err != nil {
			t.Fatal(err)
		}
		d, err := lbic.AnalyzeRefStream(context.Background(), prog, lbic.RefStreamOptions{Banks: 4, LineSize: 32, Insts: testInsts})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	// Uniform would be 25% same-bank; every benchmark should exceed it.
	for _, bench := range lbic.BenchmarkNames() {
		if d := sameBank(bench); d.SameBankFrac() < 0.3 {
			t.Errorf("%s: same-bank %.2f, want the paper's >0.3 skew", bench, d.SameBankFrac())
		}
	}
	// gcc, li, perl: >40%% of consecutive references hit the same line.
	for _, bench := range []string{"gcc", "li", "perl"} {
		if d := sameBank(bench); d.SameLineFrac() < 0.4 {
			t.Errorf("%s: same-line %.2f, paper reports > 0.4", bench, d.SameLineFrac())
		}
	}
	// swim: the suite's largest same-bank-different-line component.
	dSwim := sameBank("swim")
	for _, bench := range []string{"gcc", "li", "perl", "compress"} {
		if d := sameBank(bench); d.DiffLineFrac() > dSwim.DiffLineFrac() {
			t.Errorf("%s diff-line %.2f exceeds swim's %.2f", bench, d.DiffLineFrac(), dSwim.DiffLineFrac())
		}
	}
}

// Figure 4c as public API: the paper's hand-computed cycle counts.
func TestScenarioCyclesFigure4c(t *testing.T) {
	refs := []lbic.Ref{
		{Addr: 12*64 + 0, Store: true},
		{Addr: 10*64 + 32 + 4},
		{Addr: 10*64 + 32 + 8},
		{Addr: 12*64 + 12, Store: true},
	}
	cases := []struct {
		port lbic.PortConfig
		want int
	}{
		{lbic.ReplicatedPort(2), 3},
		{lbic.BankedPort(2), 2},
		{lbic.LBICPort(2, 2), 1},
	}
	for _, c := range cases {
		got, err := lbic.ScenarioCycles(c.port, refs)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("%s: %d cycles, want %d", c.port.Name(), got, c.want)
		}
	}
}

// Custom programs through the public builder run end to end.
func TestCustomProgram(t *testing.T) {
	b := lbic.NewBuilder("custom")
	data := b.Alloc(1024, 64)
	r := lbic.R
	b.Li(r(1), int64(data))
	b.Li(r(2), 0)
	b.Li(r(3), 100)
	b.Label("loop")
	b.Ld(r(4), r(1), 0)
	b.Add(r(2), r(2), r(4))
	b.Addi(r(3), r(3), -1)
	b.Bne(r(3), r(0), "loop")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := lbic.DefaultConfig()
	res, err := lbic.Simulate(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts != 404 {
		t.Errorf("committed %d instructions, want 404", res.Insts)
	}
}
