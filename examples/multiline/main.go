// Multiline explores one step beyond the paper using the library's custom
// arbiter extension point: an LBIC variant whose banks each hold TWO open
// line buffers instead of one, so a bank can serve combinable groups from
// two different lines in the same cycle (at the cost of a second buffer and
// a dual-ported array read — the same kind of cost/performance step the
// paper weighs between designs).
//
// On streams where two hot lines alternate within one bank — swim's
// same-bank different-line signature — a second buffer attacks exactly the
// B-diff-line conflicts the paper says combining cannot remove.
//
//	go run ./examples/multiline
package main

import (
	"fmt"
	"log"

	"lbic"
)

// twoLineLBIC is a user-defined arbiter: M banks, each able to open up to
// two lines per cycle, with up to n accesses per opened line.
type twoLineLBIC struct {
	sel    interface{ BankOf(uint64) int }
	lineOf func(uint64) uint64
	banks  int
	n      int

	opened [][2]uint64
	counts [][2]int
	used   []int
}

func newTwoLineLBIC(banks, n, lineSize int) (*twoLineLBIC, error) {
	sel, err := lbic.NewBankSelector(banks, lineSize)
	if err != nil {
		return nil, err
	}
	return &twoLineLBIC{
		sel:    sel,
		lineOf: sel.LineOf,
		banks:  banks,
		n:      n,
		opened: make([][2]uint64, banks),
		counts: make([][2]int, banks),
		used:   make([]int, banks),
	}, nil
}

func (a *twoLineLBIC) Name() string   { return fmt.Sprintf("lbic2-%dx%d", a.banks, a.n) }
func (a *twoLineLBIC) PeakWidth() int { return a.banks * a.n * 2 }

func (a *twoLineLBIC) Grant(_ uint64, ready []lbic.Request, dst []int) []int {
	for b := 0; b < a.banks; b++ {
		a.used[b] = 0
		a.counts[b] = [2]int{}
	}
	for i := range ready {
		b := a.sel.BankOf(ready[i].Addr)
		line := a.lineOf(ready[i].Addr)
		granted := false
		for s := 0; s < a.used[b]; s++ {
			if a.opened[b][s] == line && a.counts[b][s] < a.n {
				a.counts[b][s]++
				granted = true
				break
			}
		}
		if !granted && a.used[b] < 2 {
			s := a.used[b]
			a.opened[b][s] = line
			a.counts[b][s] = 1
			a.used[b]++
			granted = true
		}
		if granted {
			dst = append(dst, i)
		}
	}
	return dst
}

func main() {
	fmt.Println("LBIC variant with two open lines per bank (custom arbiter):")
	fmt.Println()
	fmt.Printf("%-9s %10s %10s %10s %10s\n", "bench", "bank-4", "lbic-4x2", "lbic2-4x2", "true-8")
	for _, bench := range []string{"swim", "hydro2d", "li", "compress", "mgrid"} {
		prog, err := lbic.BuildBenchmark(bench)
		if err != nil {
			log.Fatal(err)
		}
		run := func(port lbic.PortConfig) float64 {
			cfg := lbic.DefaultConfig()
			cfg.Port = port
			cfg.MaxInsts = 300_000
			res, err := lbic.Simulate(prog, cfg)
			if err != nil {
				log.Fatal(err)
			}
			return res.IPC
		}
		custom := lbic.CustomPort("two-line-lbic", func(lineSize int) (lbic.Arbiter, error) {
			return newTwoLineLBIC(4, 2, lineSize)
		})
		fmt.Printf("%-9s %10.3f %10.3f %10.3f %10.3f\n", bench,
			run(lbic.BankedPort(4)),
			run(lbic.LBICPort(4, 2)),
			run(custom),
			run(lbic.IdealPort(8)))
	}
	fmt.Println()
	fmt.Println("The second line buffer attacks the same-bank different-line")
	fmt.Println("conflicts (swim's signature) that single-line combining cannot.")
}
