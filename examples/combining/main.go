// Combining walks through the paper's Figure 4c example: four ready memory
// operations — a store and a store to one line of bank 0, two loads to one
// line of bank 1 — take three cycles on a 2-port replicated cache (each
// store broadcast is exclusive), two cycles on a 2-bank cache (one access
// per bank per cycle), and a single cycle on a 2x2 LBIC (each bank combines
// its same-line pair).
//
// The first part replays the exact one-shot scenario through each arbiter
// with ScenarioCycles. The second part runs a program that issues the same
// pattern continuously, showing the sustained picture: the LBIC's store
// queue must still retire its lines through the single-ported arrays, so
// sustained store-heavy traffic converges toward banked behaviour — exactly
// why the paper's Table 4 shows the LBIC's biggest wins on load-rich codes.
//
//	go run ./examples/combining
package main

import (
	"fmt"
	"log"

	"lbic"
)

func main() {
	// With 2 banks and 32-byte lines, the bank is bit 5 of the address.
	// Line 12 of bank 0 holds the two stores; line 10+1 of bank 1 the loads
	// (the paper's access pattern of Figure 4c).
	refs := []lbic.Ref{
		{Addr: 12*64 + 0, Store: true},  // bank 0, store
		{Addr: 10*64 + 32 + 4},          // bank 1, load
		{Addr: 10*64 + 32 + 8},          // bank 1, load, same line
		{Addr: 12*64 + 12, Store: true}, // bank 0, store, same line
	}

	fmt.Println("One-shot (Figure 4c): four ready references, cycles to drain:")
	for _, port := range []lbic.PortConfig{
		lbic.ReplicatedPort(2),
		lbic.BankedPort(2),
		lbic.LBICPort(2, 2),
	} {
		cycles, err := lbic.ScenarioCycles(port, refs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %d cycle(s)\n", port.Name(), cycles)
	}
	fmt.Println("  (the paper's hand analysis: 3, 2 and 1)")

	// Sustained: the same pattern in a loop, through the full pipeline.
	b := lbic.NewBuilder("figure4c-sustained")
	region := b.Alloc(4<<10, 4096)
	r := lbic.R
	b.Li(r(1), int64(region))
	b.Li(r(2), int64(region)+4<<10)
	b.Li(r(3), 7)
	b.Label("loop")
	b.Sd(r(3), r(1), 0)  // bank 0
	b.Ld(r(4), r(1), 32) // bank 1
	b.Ld(r(5), r(1), 40) // bank 1, same line
	b.Sd(r(3), r(1), 8)  // bank 0, same line
	b.Addi(r(1), r(1), 64)
	b.Blt(r(1), r(2), "loop")
	b.Li(r(1), int64(region))
	b.J("loop")
	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nSustained (full pipeline, cycles per 4-reference group):")
	for _, port := range []lbic.PortConfig{
		lbic.ReplicatedPort(2),
		lbic.BankedPort(2),
		lbic.LBICPort(2, 2),
	} {
		cfg := lbic.DefaultConfig()
		cfg.Port = port
		cfg.MaxInsts = 300_000
		res, err := lbic.Simulate(prog, cfg)
		if err != nil {
			log.Fatal(err)
		}
		extra := ""
		if res.LBIC != nil {
			extra = fmt.Sprintf("  (combined %d, store-line drains %d)",
				res.LBIC.Combined, res.LBIC.StoreDrains)
		}
		fmt.Printf("  %-8s %.2f%s\n", port.Name(),
			float64(res.Cycles)*6/float64(res.Insts), extra)
	}
	fmt.Println("\nSustained, the stores must still retire through the single-ported")
	fmt.Println("arrays, so the combining win concentrates on load-side traffic.")
}
