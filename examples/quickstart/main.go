// Quickstart: build a small custom program with the public Builder API and
// simulate it under two cache port organizations.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lbic"
)

func main() {
	// A toy kernel: stream over an array, accumulating and writing back —
	// two loads and a store per element, with same-line pairs a combining
	// cache can exploit.
	b := lbic.NewBuilder("quickstart")
	data := b.Alloc(64<<10, 64)
	for i := 0; i < 64<<10; i += 8 {
		b.SetWord64(data+uint64(i), uint64(i))
	}

	r := lbic.R
	b.Li(r(1), int64(data)) // cursor
	b.Li(r(2), int64(data)+64<<10)
	b.Li(r(3), 0) // accumulator
	b.Label("loop")
	b.Ld(r(4), r(1), 0)
	b.Ld(r(5), r(1), 8) // same cache line as the previous load
	b.Add(r(3), r(3), r(4))
	b.Add(r(3), r(3), r(5))
	b.Sd(r(3), r(1), 16) // and so is the store
	b.Addi(r(1), r(1), 32)
	b.Blt(r(1), r(2), "loop")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	for _, port := range []lbic.PortConfig{
		lbic.IdealPort(1),   // single-ported baseline
		lbic.BankedPort(4),  // traditional 4-bank interleaved
		lbic.LBICPort(4, 2), // the paper's 4x2 LBIC
	} {
		cfg := lbic.DefaultConfig()
		cfg.Port = port
		res, err := lbic.Simulate(prog, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s IPC %.3f  (%d instructions in %d cycles, %d loads forwarded)\n",
			port.Name(), res.IPC, res.Insts, res.Cycles, res.CPU.Forwards)
	}
}
