# saxpy.s — y[i] = a*x[i] + y[i] over 64K doubles, unit stride.
# Demonstrates the lbicasm toolchain; the x and y arrays are placed a
# multiple of 256 bytes apart so they collide in the same bank of a
# line-interleaved cache (a swim-style B-diff-line stream).

.at x 0x100000 524288
.at y 0x200D00 524288
.alloc c 8 8
.float c 2.0

    li  r1, 0          # byte offset
    li  r2, 524288     # end
    li  r3, x
    li  r4, y
    li  r5, c
    fld f1, 0(r5)      # a

loop:
    add  r6, r3, r1
    fld  f2, 0(r6)     # x[i]
    add  r7, r4, r1
    fld  f3, 0(r7)     # y[i]
    fmul f2, f2, f1
    fadd f3, f3, f2
    fsd  f3, 0(r7)     # y[i] updated
    addi r1, r1, 8
    blt  r1, r2, loop
    halt
