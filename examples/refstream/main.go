// Refstream reproduces the paper's Figure 3: for each benchmark, the
// distribution of consecutive memory references over an infinitely large
// 4-bank line-interleaved cache — same bank and same line, same bank but a
// different line, or one of the other three banks. The same-bank skew (and
// the same-line share within it) is the observation motivating the LBIC.
//
//	go run ./examples/refstream
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"lbic"
)

func main() {
	fmt.Println("Consecutive reference mapping, infinite 4-bank cache, 32B lines")
	fmt.Println("(each bar: ■ B-same-line, ▤ B-diff-line, · other banks)")
	fmt.Println()
	for _, name := range lbic.BenchmarkNames() {
		prog, err := lbic.BuildBenchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		d, err := lbic.AnalyzeRefStream(context.Background(), prog, lbic.RefStreamOptions{Banks: 4, LineSize: 32, Insts: 400_000})
		if err != nil {
			log.Fatal(err)
		}
		same := d.SameLineFrac()
		diff := d.DiffLineFrac()
		bar := strings.Repeat("■", int(same*40+0.5)) +
			strings.Repeat("▤", int(diff*40+0.5))
		bar += strings.Repeat("·", 40-len([]rune(bar)))
		fmt.Printf("%-9s |%s| same-line %5.1f%%  diff-line %5.1f%%  same-bank %5.1f%%\n",
			name, bar, 100*same, 100*diff, 100*d.SameBankFrac())
	}
	fmt.Println()
	fmt.Println("A uniform stream would put 25% in each bank; the skew toward the")
	fmt.Println("same bank — mostly the same line — is what access combining recovers.")
}
