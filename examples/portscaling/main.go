// Portscaling reproduces the paper's §3 scaling observations for one
// benchmark: how IPC grows with ideal ports (the upper bound), where
// replication's store broadcasts bite, and where bank conflicts cap the
// multi-bank design.
//
//	go run ./examples/portscaling            # defaults to compress
//	go run ./examples/portscaling mgrid
package main

import (
	"fmt"
	"log"
	"os"

	"lbic"
)

func main() {
	bench := "compress"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	prog, err := lbic.BuildBenchmark(bench)
	if err != nil {
		log.Fatal(err)
	}

	run := func(port lbic.PortConfig) float64 {
		cfg := lbic.DefaultConfig()
		cfg.Port = port
		cfg.MaxInsts = 500_000
		res, err := lbic.Simulate(prog, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res.IPC
	}

	base := run(lbic.IdealPort(1))
	fmt.Printf("%s: single-port IPC %.3f\n\n", bench, base)
	fmt.Printf("%6s  %8s %8s %8s   %s\n", "ports", "True", "Repl", "Bank", "True gain over 1 port")
	prev := base
	for _, p := range []int{2, 4, 8, 16} {
		ideal := run(lbic.IdealPort(p))
		repl := run(lbic.ReplicatedPort(p))
		bank := run(lbic.BankedPort(p))
		fmt.Printf("%6d  %8.3f %8.3f %8.3f   +%.0f%% (step +%.0f%%)\n",
			p, ideal, repl, bank, 100*(ideal-base)/base, 100*(ideal-prev)/prev)
		prev = ideal
	}

	fmt.Println()
	for _, c := range [][2]int{{2, 2}, {4, 2}, {4, 4}} {
		ipc := run(lbic.LBICPort(c[0], c[1]))
		fmt.Printf("LBIC %dx%d: IPC %.3f\n", c[0], c[1], ipc)
	}
}
