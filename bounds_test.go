package lbic_test

import (
	"strings"
	"testing"

	"lbic"
)

// TestAnalyticPortBound validates every benchmark/port-count combination
// against the closed-form port bound: committed instructions per cycle can
// never exceed ports divided by the fraction of instructions that actually
// consumed a port (loads that forwarded in the LSQ do not). This ties the
// simulator to first principles — if arbitration ever over-granted, or
// accounting ever dropped a request, some cell would break the bound.
func TestAnalyticPortBound(t *testing.T) {
	for _, bench := range lbic.BenchmarkNames() {
		prog, err := lbic.BuildBenchmark(bench)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 2, 4} {
			cfg := lbic.DefaultConfig()
			cfg.Port = lbic.IdealPort(p)
			cfg.MaxInsts = 60_000
			res, err := lbic.Simulate(prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Port-consuming references per instruction.
			portRefs := float64(res.CPU.PortGrants-res.CPU.PortBlocked) / float64(res.Insts)
			if portRefs == 0 {
				continue
			}
			bound := float64(p) / portRefs
			if res.IPC > bound*1.001 {
				t.Errorf("%s true-%d: IPC %.3f exceeds port bound %.3f (portRefs/inst %.3f)",
					bench, p, res.IPC, bound, portRefs)
			}
		}
	}
}

// TestAnalyticGrantConservation: every port grant is accounted for — it
// either became a hierarchy access (hit/miss/blocked), and the hierarchy's
// own accounting must balance.
func TestAnalyticGrantConservation(t *testing.T) {
	for _, bench := range []string{"compress", "li", "swim"} {
		for _, port := range []lbic.PortConfig{
			lbic.IdealPort(4), lbic.BankedPort(4), lbic.LBICPort(4, 2), lbic.ReplicatedPort(4),
		} {
			res := simulate(t, bench, port)
			m := res.Mem
			if m.Accesses != res.CPU.PortGrants {
				t.Errorf("%s %s: hierarchy accesses %d != port grants %d",
					bench, port.Name(), m.Accesses, res.CPU.PortGrants)
			}
			if m.Hits+m.MissesNew+m.MissesMerge+m.Blocked != m.Accesses {
				t.Errorf("%s %s: hierarchy accounting unbalanced: %+v", bench, port.Name(), m)
			}
			// Committed memory operations = grants that completed plus
			// forwarded loads (each non-blocked grant services one op).
			completed := res.CPU.PortGrants - res.CPU.PortBlocked + res.CPU.Forwards
			if completed != res.CPU.Loads+res.CPU.Stores {
				t.Errorf("%s %s: completed memory ops %d != loads+stores %d",
					bench, port.Name(), completed, res.CPU.Loads+res.CPU.Stores)
			}
		}
	}
}

// TestPortConfigErrors: every malformed port organization is rejected up
// front with an error naming the offending parameter, not a panic or a
// silently clamped run.
func TestPortConfigErrors(t *testing.T) {
	refs := []lbic.Ref{{Addr: 0}}
	cases := []struct {
		port lbic.PortConfig
		want string
	}{
		{lbic.IdealPort(0), "ideal port count 0 is not positive"},
		{lbic.ReplicatedPort(0), "replicated port count 0 is not positive"},
		{lbic.BankedPort(3), "bank count 3 is not a positive power of two"},
		{lbic.BankedPort(0), "bank count 0 is not a positive power of two"},
		{lbic.MultiPortedBanksPort(2, 0), "ports per bank 0 is not positive"},
		{lbic.LBICPort(4, 0), "LBIC line ports 0 is not positive"},
		// Default 32-byte lines hold 8 four-byte words; a 64-wide combining
		// bus cannot be built from them (§5.1's N ≤ L/4 constraint).
		{lbic.LBICPort(4, 64), "combining width 64 exceeds the 8 four-byte words of a 32-byte line"},
		{lbic.PortConfig{Kind: lbic.LBIC, Banks: 4, LinePorts: 2, StoreQueueDepth: -1},
			"LBIC store queue depth -1 is not positive"},
		{lbic.PortConfig{Kind: lbic.BankedStoreQueue, Banks: 4, StoreQueueDepth: -1},
			"store queue depth -1 is not positive"},
	}
	for _, c := range cases {
		if _, err := lbic.ScenarioCycles(c.port, refs); err == nil {
			t.Errorf("%+v: accepted, want error %q", c.port, c.want)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%+v: error %q, want it to contain %q", c.port, err, c.want)
		}
	}
}

// TestSimConfigErrors: malformed hierarchy and processor overrides are
// rejected by Simulate with distinct messages.
func TestSimConfigErrors(t *testing.T) {
	prog, err := lbic.BuildPattern("unit-stride")
	if err != nil {
		t.Fatal(err)
	}
	run := func(mutate func(*lbic.Config)) error {
		cfg := lbic.DefaultConfig()
		cfg.MaxInsts = 100
		mutate(&cfg)
		_, err := lbic.Simulate(prog, cfg)
		return err
	}
	cases := []struct {
		name   string
		mutate func(*lbic.Config)
		want   string
	}{
		{"non-power-of-two line size", func(cfg *lbic.Config) {
			mem := lbic.DefaultMemParams()
			mem.L1.LineSize = 24
			cfg.Mem = &mem
			cfg.Port = lbic.BankedPort(4) // bank selection needs the line bits
		}, "line size 24 is not a positive power of two"},
		{"zero fetch width", func(cfg *lbic.Config) {
			cpu := lbic.DefaultCPUConfig()
			cpu.FetchWidth = 0
			cfg.CPU = &cpu
		}, "widths must be positive"},
		{"negative FU count", func(cfg *lbic.Config) {
			cpu := lbic.DefaultCPUConfig()
			cpu.FUCount[0] = -1
			cfg.CPU = &cpu
		}, "negative unit count"},
		{"zero RUU", func(cfg *lbic.Config) {
			cpu := lbic.DefaultCPUConfig()
			cpu.RUUSize = 0
			cfg.CPU = &cpu
		}, "RUU size 0 is not positive"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run(c.mutate)
			if err == nil {
				t.Fatalf("accepted, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q, want it to contain %q", err, c.want)
			}
		})
	}
}

// TestAnalyticWidthBounds: IPC never exceeds any front-end width.
func TestAnalyticWidthBounds(t *testing.T) {
	for _, bench := range lbic.BenchmarkNames() {
		res := simulate(t, bench, lbic.IdealPort(16))
		if res.IPC > 64.001 {
			t.Errorf("%s: IPC %.2f exceeds machine width", bench, res.IPC)
		}
		if res.CPU.Committed != res.CPU.Dispatched {
			t.Errorf("%s: committed %d != dispatched %d", bench, res.CPU.Committed, res.CPU.Dispatched)
		}
	}
}
