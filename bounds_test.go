package lbic_test

import (
	"testing"

	"lbic"
)

// TestAnalyticPortBound validates every benchmark/port-count combination
// against the closed-form port bound: committed instructions per cycle can
// never exceed ports divided by the fraction of instructions that actually
// consumed a port (loads that forwarded in the LSQ do not). This ties the
// simulator to first principles — if arbitration ever over-granted, or
// accounting ever dropped a request, some cell would break the bound.
func TestAnalyticPortBound(t *testing.T) {
	for _, bench := range lbic.BenchmarkNames() {
		prog, err := lbic.BuildBenchmark(bench)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 2, 4} {
			cfg := lbic.DefaultConfig()
			cfg.Port = lbic.IdealPort(p)
			cfg.MaxInsts = 60_000
			res, err := lbic.Simulate(prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Port-consuming references per instruction.
			portRefs := float64(res.CPU.PortGrants-res.CPU.PortBlocked) / float64(res.Insts)
			if portRefs == 0 {
				continue
			}
			bound := float64(p) / portRefs
			if res.IPC > bound*1.001 {
				t.Errorf("%s true-%d: IPC %.3f exceeds port bound %.3f (portRefs/inst %.3f)",
					bench, p, res.IPC, bound, portRefs)
			}
		}
	}
}

// TestAnalyticGrantConservation: every port grant is accounted for — it
// either became a hierarchy access (hit/miss/blocked), and the hierarchy's
// own accounting must balance.
func TestAnalyticGrantConservation(t *testing.T) {
	for _, bench := range []string{"compress", "li", "swim"} {
		for _, port := range []lbic.PortConfig{
			lbic.IdealPort(4), lbic.BankedPort(4), lbic.LBICPort(4, 2), lbic.ReplicatedPort(4),
		} {
			res := simulate(t, bench, port)
			m := res.Mem
			if m.Accesses != res.CPU.PortGrants {
				t.Errorf("%s %s: hierarchy accesses %d != port grants %d",
					bench, port.Name(), m.Accesses, res.CPU.PortGrants)
			}
			if m.Hits+m.MissesNew+m.MissesMerge+m.Blocked != m.Accesses {
				t.Errorf("%s %s: hierarchy accounting unbalanced: %+v", bench, port.Name(), m)
			}
			// Committed memory operations = grants that completed plus
			// forwarded loads (each non-blocked grant services one op).
			completed := res.CPU.PortGrants - res.CPU.PortBlocked + res.CPU.Forwards
			if completed != res.CPU.Loads+res.CPU.Stores {
				t.Errorf("%s %s: completed memory ops %d != loads+stores %d",
					bench, port.Name(), completed, res.CPU.Loads+res.CPU.Stores)
			}
		}
	}
}

// TestAnalyticWidthBounds: IPC never exceeds any front-end width.
func TestAnalyticWidthBounds(t *testing.T) {
	for _, bench := range lbic.BenchmarkNames() {
		res := simulate(t, bench, lbic.IdealPort(16))
		if res.IPC > 64.001 {
			t.Errorf("%s: IPC %.2f exceeds machine width", bench, res.IPC)
		}
		if res.CPU.Committed != res.CPU.Dispatched {
			t.Errorf("%s: committed %d != dispatched %d", bench, res.CPU.Committed, res.CPU.Dispatched)
		}
	}
}
