package lbic_test

import (
	"fmt"
	"testing"

	"lbic"
	"lbic/internal/experiments"
)

// The benchmarks below regenerate each table and figure of the paper at a
// reduced per-run instruction budget (go test -bench honors b.N, so one
// iteration is a full regeneration). For publication-scale numbers use
//
//	go run ./cmd/lbictables -all -insts 1000000
const benchInsts = 100_000

// BenchmarkTable2Characteristics regenerates Table 2: per-benchmark memory
// instruction fraction, store-to-load ratio and 32KB L1 miss rate.
func BenchmarkTable2Characteristics(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(experiments.NewSweep(benchInsts))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 10 {
			b.Fatalf("rows = %d", len(rows))
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%-9s mem%%=%.1f s/l=%.2f miss=%.4f (paper %.1f/%.2f/%.4f)",
					r.Name, r.Stats.MemPct, r.Stats.StoreToLoad, r.Stats.MissRate,
					r.PaperMemPct, r.PaperStoreToLoad, r.PaperMissRate)
			}
		}
	}
}

// BenchmarkTable3PortModels regenerates Table 3: IPC of ideal (True),
// replicated (Repl) and multi-bank (Bank) designs at 1-16 ports, with the
// SPECint/SPECfp averages the paper reports.
func BenchmarkTable3PortModels(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := experiments.Table3(experiments.NewSweep(benchInsts))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, kind := range []string{"True", "Repl", "Bank"} {
				b.Logf("SPECint Ave. %s: 2:%.2f 4:%.2f 8:%.2f 16:%.2f", kind,
					d.Average(kind, 2, experiments.IntNames()),
					d.Average(kind, 4, experiments.IntNames()),
					d.Average(kind, 8, experiments.IntNames()),
					d.Average(kind, 16, experiments.IntNames()))
			}
		}
	}
}

// BenchmarkTable3PortModelsLaned regenerates Table 3 with each benchmark's
// port axis stepped as one lane batch off a shared decode cursor (the
// lbictables default since -lanes). Compare against BenchmarkTable3PortModels
// — the same 130 simulations run scalar — for the decode-amortization win.
func BenchmarkTable3PortModelsLaned(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sw := experiments.NewSweep(benchInsts)
		sw.Lanes = -1
		if _, err := experiments.Table3(sw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3RefStream regenerates Figure 3: the consecutive-reference
// mapping distribution over an infinite 4-bank cache.
func BenchmarkFigure3RefStream(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3(experiments.NewSweep(benchInsts))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%-9s same-line=%.1f%% diff-line=%.1f%%",
					r.Name, 100*r.Dist.SameLineFrac(), 100*r.Dist.DiffLineFrac())
			}
		}
	}
}

// BenchmarkTable4LBIC regenerates Table 4: IPC of the six MxN LBIC
// configurations.
func BenchmarkTable4LBIC(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := experiments.Table4(experiments.NewSweep(benchInsts))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range experiments.LBICConfigs {
				key := experiments.ConfigKey(c[0], c[1])
				b.Logf("%s: int ave %.3f, fp ave %.3f", key,
					d.Average(key, experiments.IntNames()),
					d.Average(key, experiments.FPNames()))
			}
		}
	}
}

// BenchmarkFigure4cScenario regenerates the paper's §5 worked example.
func BenchmarkFigure4cScenario(b *testing.B) {
	b.ReportAllocs()
	refs := []lbic.Ref{
		{Addr: 12*64 + 0, Store: true},
		{Addr: 10*64 + 32 + 4},
		{Addr: 10*64 + 32 + 8},
		{Addr: 12*64 + 12, Store: true},
	}
	for i := 0; i < b.N; i++ {
		for _, c := range []struct {
			port lbic.PortConfig
			want int
		}{
			{lbic.ReplicatedPort(2), 3},
			{lbic.BankedPort(2), 2},
			{lbic.LBICPort(2, 2), 1},
		} {
			got, err := lbic.ScenarioCycles(c.port, refs)
			if err != nil {
				b.Fatal(err)
			}
			if got != c.want {
				b.Fatalf("%s: %d cycles, want %d", c.port.Name(), got, c.want)
			}
		}
	}
}

// BenchmarkCodedArbiterStep measures the per-cycle grant cost of the coded
// organizations against plain banking on the worst-case ready set (a
// same-bank burst, where every cycle walks the reconstruction path).
func BenchmarkCodedArbiterStep(b *testing.B) {
	refs := []lbic.Ref{{Addr: 0}, {Addr: 8}, {Addr: 16}, {Addr: 24}}
	spec := lbic.CodedPort(4, 1)
	spec.Speculative = true
	composed := lbic.CodedPort(4, 1)
	composed.LinePorts = 2
	for _, port := range []lbic.PortConfig{
		lbic.BankedPort(4), lbic.CodedPort(4, 1), lbic.CodedPort(4, 2), spec, composed,
	} {
		b.Run(port.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lbic.ScenarioCycles(port, refs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBankSelection sweeps the §3.2 bank selection functions.
func BenchmarkAblationBankSelection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBankSelection(experiments.NewSweep(benchInsts)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCombiningPolicy compares the paper's leading-request LBIC
// against its §5.2 proposed greedy largest-group enhancement.
func BenchmarkAblationCombiningPolicy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCombiningPolicy(experiments.NewSweep(benchInsts)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLSQDepth sweeps the LSQ depth under the 4x2 LBIC (§5.2:
// deeper LSQs help combining).
func BenchmarkAblationLSQDepth(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationLSQDepth(experiments.NewSweep(benchInsts)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationScanDepth sweeps the LSQ scheduling window under the
// banked cache (the §5 memory re-ordering effect).
func BenchmarkAblationScanDepth(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationScanDepth(experiments.NewSweep(benchInsts)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (instructions
// per wall-clock second) on a representative workload and configuration,
// with the instruction stream coming from the live emulator ("live") or
// replayed from a warm trace cache ("replay") — the sweep steady state.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tc := lbic.NewTraceCache(0)
	for _, bench := range []string{"compress", "mgrid"} {
		for _, port := range []lbic.PortConfig{lbic.IdealPort(4), lbic.LBICPort(4, 2), lbic.CodedPort(4, 1)} {
			for _, mode := range []string{"live", "replay"} {
				b.Run(fmt.Sprintf("%s/%s/%s", bench, port.Name(), mode), func(b *testing.B) {
					prog, err := lbic.BuildBenchmark(bench)
					if err != nil {
						b.Fatal(err)
					}
					cfg := lbic.DefaultConfig()
					cfg.Port = port
					cfg.MaxInsts = benchInsts
					if mode == "replay" {
						cfg.Trace = tc
						if _, err := lbic.Simulate(prog, cfg); err != nil {
							b.Fatal(err) // record outside the timed region
						}
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res, err := lbic.Simulate(prog, cfg)
						if err != nil {
							b.Fatal(err)
						}
						b.SetBytes(int64(res.Insts)) // "bytes" = instructions
					}
				})
			}
		}
	}
}
