module lbic

go 1.22
