module lbic

go 1.23
