package lbic

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestRegistryRoundTripAllKinds is the registry's contract property: every
// registered wire kind's axis and grammar-corner samples must survive
// Key -> ParsePortName and JSON marshal -> unmarshal unchanged, validate,
// and name themselves under their kind's token. A kind that round-trips here
// needs no edits outside its registry entry.
func TestRegistryRoundTripAllKinds(t *testing.T) {
	samples := portSamples()
	if len(samples) == 0 {
		t.Fatal("registry has no sample configurations")
	}
	covered := map[PortKind]bool{}
	for _, p := range samples {
		covered[p.Kind] = true
		key := p.Key()
		if err := p.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", key, err)
			continue
		}
		o, ok := portOrgFor(p.Kind)
		if !ok {
			t.Errorf("%s: kind %d not registered", key, int(p.Kind))
			continue
		}
		if !strings.HasPrefix(p.Name(), o.token+"-") {
			t.Errorf("%s: Name %q does not start with token %q", key, p.Name(), o.token)
		}
		back, err := ParsePortName(key)
		if err != nil {
			t.Errorf("ParsePortName(%q): %v", key, err)
		} else if !reflect.DeepEqual(back, p) {
			t.Errorf("ParsePortName(%q) = %+v, want %+v", key, back, p)
		}
		raw, err := json.Marshal(p)
		if err != nil {
			t.Errorf("%s: marshal: %v", key, err)
			continue
		}
		var jback PortConfig
		if err := json.Unmarshal(raw, &jback); err != nil {
			t.Errorf("%s: unmarshal %s: %v", key, raw, err)
		} else if !reflect.DeepEqual(jback, p) {
			t.Errorf("%s: JSON round trip %s -> %+v != %+v", key, raw, jback, p)
		}
		arb, err := buildArbiter(p, 32)
		if err != nil {
			t.Errorf("%s: buildArbiter: %v", key, err)
			continue
		}
		if got, want := arb.PeakWidth(), p.PeakWidth(); got != want {
			t.Errorf("%s: arbiter peak width %d, registry says %d", key, got, want)
		}
	}
	for _, info := range PortOrganizations() {
		if info.Wire && !covered[info.Kind] {
			t.Errorf("registered kind %s (%s) has no round-trip sample", info.Display, info.Token)
		}
	}
}

// TestRegistryCompleteness pins the registry's structural invariants: every
// PortKind constant registered exactly once, unique tokens, a display name,
// and a schema that always lists the kind discriminator.
func TestRegistryCompleteness(t *testing.T) {
	infos := PortOrganizations()
	kinds := []PortKind{Ideal, Replicated, Banked, LBIC, VirtualMultiport,
		BankedStoreQueue, MultiPortedBanks, Coded, customPortKind}
	if len(infos) != len(kinds) {
		t.Errorf("registry lists %d organizations, want %d", len(infos), len(kinds))
	}
	seenKind := map[PortKind]bool{}
	seenToken := map[string]bool{}
	for _, info := range infos {
		if seenKind[info.Kind] {
			t.Errorf("kind %s registered twice", info.Display)
		}
		seenKind[info.Kind] = true
		if seenToken[info.Token] {
			t.Errorf("token %q registered twice", info.Token)
		}
		seenToken[info.Token] = true
		if info.Display == "" || info.Token == "" {
			t.Errorf("entry %+v missing token or display name", info)
		}
		if len(info.Schema) == 0 || info.Schema[0] != "kind" {
			t.Errorf("%s: schema %v must lead with the kind discriminator", info.Token, info.Schema)
		}
	}
	for _, k := range kinds {
		if !seenKind[k] {
			t.Errorf("kind %v not registered", k)
		}
	}
	axis := PortAxis()
	if len(axis) == 0 {
		t.Fatal("empty default port axis")
	}
	for _, p := range axis {
		if err := p.Validate(); err != nil {
			t.Errorf("axis config %s: %v", p.Key(), err)
		}
	}
	// Coded must be on the default axis: the sweeps, workload tables, and
	// port-roaming adversarial search all derive their columns from it.
	found := false
	for _, p := range axis {
		if p.Kind == Coded {
			found = true
		}
	}
	if !found {
		t.Error("default port axis omits the coded organization")
	}
}
