package lbic

import (
	"fmt"
	"strings"
	"testing"
)

// The tables below hand-work the paper's Figure 4c analysis — a set of
// simultaneously ready references pushed through each port organization —
// for three reference patterns, with exact cycle counts derived the way the
// paper derives its example (line size 32, bit-selected banks).

// fig4cCase is one (organization, expected cycles) row.
type fig4cCase struct {
	port PortConfig
	want int
}

// codedVariant builds a coded-banks configuration with the optional knobs set.
func codedVariant(banks, parity, linePorts int, spec bool) PortConfig {
	p := CodedPort(banks, parity)
	p.LinePorts = linePorts
	p.Speculative = spec
	return p
}

func runScenarioTable(t *testing.T, refs []Ref, cases []fig4cCase) {
	t.Helper()
	for _, c := range cases {
		t.Run(c.port.Name(), func(t *testing.T) {
			got, err := ScenarioCycles(c.port, refs)
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Errorf("%s drained in %d cycles, want %d", c.port.Name(), got, c.want)
			}
		})
	}
}

// TestScenarioSameLineBurst: four loads to consecutive words of one line.
// Everything lands in one bank, so banked designs serialize completely
// while combining recovers the ideal rate.
func TestScenarioSameLineBurst(t *testing.T) {
	refs := []Ref{{Addr: 0}, {Addr: 8}, {Addr: 16}, {Addr: 24}}
	runScenarioTable(t, refs, []fig4cCase{
		{IdealPort(1), 4},
		{IdealPort(2), 2},
		{IdealPort(4), 1},
		{VirtualPort(4), 1},
		{ReplicatedPort(2), 2},
		{ReplicatedPort(4), 1},
		{BankedPort(2), 4}, // one bank, one port: full serialization
		{BankedPort(4), 4},
		{BankedSQPort(4), 4}, // store queues do not help loads
		{MultiPortedBanksPort(2, 2), 2},
		{LBICPort(2, 2), 2},               // combining width 2 halves the burst
		{LBICPort(2, 4), 1},               // width 4 swallows it whole
		{CodedPort(4, 1), 2},              // leader plus one reconstruction per cycle
		{codedVariant(4, 1, 0, true), 2},  // speculative: still one parity port
		{codedVariant(4, 1, 2, false), 2}, // combine a pair, reconstruct the third
		{codedVariant(4, 1, 4, false), 1}, // composed line buffer swallows the burst
	})
}

// TestScenarioCrossBankSpread: four loads striding one line (32 bytes)
// apart. Bank counts now matter and combining cannot help — the LBIC falls
// back to exactly banked behaviour.
func TestScenarioCrossBankSpread(t *testing.T) {
	refs := []Ref{{Addr: 0}, {Addr: 32}, {Addr: 64}, {Addr: 96}}
	runScenarioTable(t, refs, []fig4cCase{
		{IdealPort(1), 4},
		{IdealPort(4), 1},
		{ReplicatedPort(4), 1},
		{BankedPort(2), 2}, // two banks, two references each
		{BankedPort(4), 1},
		{BankedSQPort(4), 1},
		{MultiPortedBanksPort(2, 2), 1},
		{LBICPort(2, 2), 2}, // different lines in one bank: no combining
		{LBICPort(4, 2), 1},
		{CodedPort(4, 1), 1},
		{CodedPort(2, 1), 2},             // strict: the other group member is busy
		{codedVariant(2, 1, 0, true), 2}, // speculative: one parity port serves one extra
		{CodedPort(2, 2), 1},             // groups of one: each parity bank is a mirror
	})
}

// TestScenarioStoreBlocked: the Figure 4c shape — a store and a younger
// store to one line of bank 0 bracketing two loads to one line of bank 1.
// Replication pays a broadcast cycle per store; banked designs pay bank
// serialization; the LBIC's store queue and combining finish in one cycle.
func TestScenarioStoreBlocked(t *testing.T) {
	refs := []Ref{
		{Addr: 12*64 + 0, Store: true},
		{Addr: 10*64 + 32 + 4},
		{Addr: 10*64 + 32 + 8},
		{Addr: 12*64 + 12, Store: true},
	}
	runScenarioTable(t, refs, []fig4cCase{
		{IdealPort(1), 4},
		{IdealPort(2), 2},
		{IdealPort(4), 1},
		{ReplicatedPort(2), 3}, // store, loads, store
		{ReplicatedPort(4), 3},
		{BankedPort(2), 2},
		{BankedPort(4), 2},
		{BankedSQPort(2), 2}, // queue takes S1; S2 writes direct; trailing load waits
		{MultiPortedBanksPort(2, 2), 1},
		{LBICPort(2, 2), 1},
		{LBICPort(4, 2), 1},
		{CodedPort(4, 1), 2},              // the trailing store coalesces its update line
		{codedVariant(4, 1, 2, false), 2}, // combining absorbs the loads; stores still serialize
	})
}

// TestScenarioCodedStaleWrite: a store to bank 0 alongside two loads to one
// line of bank 2. This is the coded design's write cost made visible: the
// store queues a code update, and while it is pending the group's code is
// stale, so a single-group design degrades to banked behaviour (the
// speculative variant replays instead of stalling, same cycle count). With
// two parity groups the store's update stays in group 0 and group 1's
// current code reconstructs the second load in the first cycle.
func TestScenarioCodedStaleWrite(t *testing.T) {
	refs := []Ref{
		{Addr: 0, Store: true}, // bank 0: queues a code update on its group
		{Addr: 64},             // bank 2
		{Addr: 72},             // bank 2, same line
	}
	runScenarioTable(t, refs, []fig4cCase{
		{IdealPort(4), 1},
		{BankedPort(4), 2},
		{LBICPort(4, 2), 1},              // the same-line loads combine
		{CodedPort(4, 1), 2},             // one group: stale code blocks reconstruction
		{codedVariant(4, 1, 0, true), 2}, // speculative parity read replays on stale code
		{CodedPort(4, 2), 1},             // write traffic isolated to group 0
		{codedVariant(4, 2, 0, true), 1},
	})
}

// neverGrant starves every request: ScenarioCycles must detect it and
// report how much work never drained rather than spinning forever.
type neverGrant struct{}

func (neverGrant) Name() string                                 { return "never" }
func (neverGrant) PeakWidth() int                               { return 1 }
func (neverGrant) Grant(_ uint64, _ []Request, dst []int) []int { return dst }

func TestScenarioStarvationLimit(t *testing.T) {
	port := CustomPort("never", func(int) (Arbiter, error) { return neverGrant{}, nil })
	refs := []Ref{{Addr: 0}, {Addr: 8}, {Addr: 16}, {Addr: 24}}
	_, err := ScenarioCycles(port, refs)
	if err == nil {
		t.Fatal("starving arbiter not detected")
	}
	limit := scenarioCyclesPerRef*len(refs) + scenarioCycleSlack
	for _, frag := range []string{
		"4 of 4 references still ready",
		fmt.Sprintf("after %d cycles", limit),
	} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("starvation error %q does not report %q", err, frag)
		}
	}
}
