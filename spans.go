package lbic

import (
	"context"
	"io"

	"lbic/internal/tracing"
)

// Request-to-cycle span tracing. A RequestTrace collects spans — timed,
// named, parented operations with attributes — from every layer a request
// crosses: the lbicd HTTP front end, the sweep runner's cells, and
// SimulateContext itself. Attach one to a context with WithTrace, run as
// usual, and export the snapshot as JSON Lines (lbic-trace/v1) or as a
// Chrome trace-event document for chrome://tracing / Perfetto. Contexts
// without a trace pay nothing: StartSpan returns a nil no-op span. (For the
// per-cycle pipeline-occupancy timeline, see TraceSimulation instead.)
type (
	// RequestTrace is a per-request (or per-job) span buffer.
	RequestTrace = tracing.Trace
	// TraceSpan is one exported span (one JSONL line).
	TraceSpan = tracing.SpanData
	// TraceSpanEvent is a point-in-time annotation within a span.
	TraceSpanEvent = tracing.EventData
	// TraceJSONLHeader is the first line of a JSONL trace export.
	TraceJSONLHeader = tracing.Header
	// TracingSpan is a live span handle; nil is a valid no-op span.
	TracingSpan = tracing.Span
)

// TraceSchema identifies the JSONL trace export layout.
const TraceSchema = tracing.Schema

// NewRequestTrace returns an empty trace whose clock starts now.
func NewRequestTrace() *RequestTrace { return tracing.New() }

// WithTrace returns ctx carrying tr; subsequent StartSpan and
// SimulateContext calls under it record spans.
func WithTrace(ctx context.Context, tr *RequestTrace) context.Context {
	return tracing.NewContext(ctx, tr)
}

// StartSpan opens a span on ctx's trace (a no-op nil span when ctx carries
// none). End it with its End method; annotate with SetAttr/Event.
func StartSpan(ctx context.Context, name string) (context.Context, *TracingSpan) {
	return tracing.Start(ctx, name)
}

// WriteTraceJSONL exports spans as the lbic-trace/v1 JSONL stream.
func WriteTraceJSONL(w io.Writer, name string, epochUnixNS int64, spans []TraceSpan) error {
	return tracing.WriteJSONL(w, name, epochUnixNS, spans)
}

// ReadTraceJSONL parses a stream written by WriteTraceJSONL.
func ReadTraceJSONL(r io.Reader) (TraceJSONLHeader, []TraceSpan, error) {
	return tracing.ReadJSONL(r)
}

// WriteChromeTrace exports spans as a chrome://tracing-loadable trace-event
// document.
func WriteChromeTrace(w io.Writer, name string, spans []TraceSpan) error {
	return tracing.WriteChrome(w, name, spans)
}

// ValidateTraceTree checks a span set's structural invariants (unique IDs,
// resolvable parents, no cycles, optionally a single root) and returns the
// root span IDs.
func ValidateTraceTree(spans []TraceSpan, requireSingleRoot bool) ([]uint64, error) {
	return tracing.ValidateTree(spans, requireSingleRoot)
}
