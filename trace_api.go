package lbic

import (
	"fmt"
	"io"

	"lbic/internal/cache"
	"lbic/internal/cpu"
	"lbic/internal/emu"
	"lbic/internal/vm"
)

// TraceOptions configures TraceSimulation's output window.
type TraceOptions struct {
	// SkipCycles fast-forwards past warm-up before printing.
	SkipCycles uint64
	// MaxCycles bounds the number of printed lines (0 = all).
	MaxCycles uint64
	// Every prints one line per this many cycles (0 or 1 = every cycle).
	Every uint64
}

// TraceSimulation runs prog like Simulate but writes a per-cycle pipeline
// occupancy timeline to w: commit and issue counts, window/LSQ/ready-queue
// occupancy, loads awaiting ports, the committed store buffer, port grants,
// and the state of the oldest instruction. Use it to see *why* a port
// organization stalls — e.g., a banked run shows the memory queue backing up
// while the same cycle window under an LBIC drains it.
func TraceSimulation(prog *Program, cfg Config, w io.Writer, opt TraceOptions) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(*vm.Fault); ok {
				err = fmt.Errorf("lbic: program %q faulted: %w", prog.Name, f)
				return
			}
			panic(r)
		}
	}()
	memParams := cache.DefaultParams()
	if cfg.Mem != nil {
		memParams = *cfg.Mem
	}
	cpuCfg := cpu.DefaultConfig()
	if cfg.CPU != nil {
		cpuCfg = *cfg.CPU
	}
	cpuCfg.MaxInsts = cfg.MaxInsts

	arb, err := buildArbiter(cfg.Port, memParams.L1.LineSize)
	if err != nil {
		return Result{}, err
	}
	hier, err := cache.NewHierarchy(memParams)
	if err != nil {
		return Result{}, err
	}
	machine, err := emu.New(prog)
	if err != nil {
		return Result{}, err
	}
	c, err := cpu.New(machine, hier, arb, cpuCfg)
	if err != nil {
		return Result{}, err
	}
	st, err := cpu.TraceRun(c, w, cpu.TraceOptions{
		SkipCycles: opt.SkipCycles,
		MaxCycles:  opt.MaxCycles,
		Every:      opt.Every,
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Benchmark: prog.Name,
		Port:      cfg.Port,
		Cycles:    st.Cycles,
		Insts:     st.Committed,
		IPC:       st.IPC(),
		CPU:       st,
		Mem:       hier.Stats(),
	}, nil
}
