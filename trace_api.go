package lbic

import (
	"context"
	"fmt"
	"io"

	"lbic/internal/cpu"
)

// TraceOptions configures TraceSimulation's output window.
type TraceOptions struct {
	// SkipCycles fast-forwards past warm-up before printing. When it skips
	// the whole run, no per-cycle header or lines are printed — only the
	// final summary.
	SkipCycles uint64
	// MaxCycles bounds the number of printed lines (0 = all).
	MaxCycles uint64
	// Every prints one line per this many cycles (0 or 1 = every cycle).
	// Sampling aligns to absolute cycle numbers (cycle % Every == 0), not
	// to SkipCycles: skip=1003, every=10 first prints cycle 1010.
	Every uint64
}

// TraceSimulation runs prog like Simulate but writes a per-cycle pipeline
// occupancy timeline to w: commit and issue counts, window/LSQ/ready-queue
// occupancy, loads awaiting ports, the committed store buffer, port grants,
// and the state of the oldest instruction. Use it to see *why* a port
// organization stalls — e.g., a banked run shows the memory queue backing up
// while the same cycle window under an LBIC drains it. The returned Result
// is as complete as Simulate's, including Metrics and port statistics.
func TraceSimulation(prog *Program, cfg Config, w io.Writer, opt TraceOptions) (res Result, err error) {
	defer recoverSimPanic(prog, &err)

	s, err := buildSim(context.Background(), prog, cfg)
	if err != nil {
		return Result{}, err
	}
	st, err := cpu.TraceRun(s.core, w, cpu.TraceOptions{
		SkipCycles: opt.SkipCycles,
		MaxCycles:  opt.MaxCycles,
		Every:      opt.Every,
	})
	if err != nil {
		return Result{}, err
	}
	// End-of-run verification only applies when the trace ran to
	// completion; a MaxCycles cut legitimately leaves work in flight.
	if err := s.finishVerify(opt.MaxCycles == 0); err != nil {
		return Result{}, fmt.Errorf("lbic: tracing %q on %s: %w", prog.Name, cfg.Port.Name(), err)
	}
	return s.result(prog.Name, cfg, st), nil
}
