package lbic

import "lbic/internal/ports"

// Arbiter is the cache-port arbitration contract: given the age-ordered
// ready memory requests of a cycle, select which access the cache. All four
// built-in organizations implement it; user code can supply its own via
// CustomPort to explore designs beyond the paper's.
type Arbiter = ports.Arbiter

// Request is one memory operation competing for a cache port.
type Request = ports.Request

// NewBankSelector returns the paper's bit-selection bank mapping for custom
// arbiters that want line-interleaved banking semantics.
func NewBankSelector(banks, lineSize int) (ports.BankSelector, error) {
	return ports.NewBankSelector(banks, lineSize)
}

// customPortKind marks PortConfigs created by CustomPort.
const customPortKind PortKind = -1

// CustomPort wraps a user-supplied arbiter factory as a PortConfig. The
// factory is invoked once per simulation (arbiters are stateful), with the
// L1 line size of the configured memory hierarchy. The label distinguishes
// this arbiter from other custom ports in names, sweep journal cell keys,
// and the lbicd result cache — two custom ports with different behaviour
// must carry different labels, or their results collide under one key.
func CustomPort(label string, factory func(lineSize int) (Arbiter, error)) PortConfig {
	return PortConfig{Kind: customPortKind, Label: label, custom: factory}
}
